//! False-positive guard: randomly generated structured kernels that are
//! clean *by construction* (every write eventually read, every read
//! preceded by a write, properly nested divergence, reachable exit)
//! must produce zero diagnostics — and must stay clean across the
//! `to_asm` / `assemble` round trip.
//!
//! Register discipline, mirroring the workload builders:
//! r0 = gtid, r1 = accumulator (stored at the end, so it is live
//! through the whole body), r2 = predicate scratch (consumed by the
//! next branch immediately), r3 = loop counter, r4 = load scratch
//! (folded into r1 immediately).

use proptest::prelude::*;
use simt_analysis::analyze;
use simt_isa::{assemble, to_asm, AluOp, Kernel, KernelBuilder, Operand, Reg, Special};

const NUM_REGS: u8 = 5;

#[derive(Clone, Debug)]
enum Stmt {
    /// `r1 = op(r1, src)` — reads the previous accumulator value, so it
    /// never kills a pending write.
    Acc { op: AluOp, src: Src },
    /// `r4 = mem[r0]; r1 = r1 + r4`.
    Load,
    /// `mem[r0] = r1`.
    Store,
    /// Compare-and-branch over a nested body.
    IfThen {
        cmp: AluOp,
        threshold: i32,
        body: Vec<Stmt>,
    },
    /// If/else diamond.
    IfThenElse {
        cmp: AluOp,
        threshold: i32,
        then_s: Vec<Stmt>,
        else_s: Vec<Stmt>,
    },
    /// Counted loop on r3.
    Loop { trips: u8, body: Vec<Stmt> },
}

#[derive(Clone, Copy, Debug)]
enum Src {
    Gtid,
    Imm(i32),
    Special(Special),
    Param(u8),
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        Just(Src::Gtid),
        (-100i32..100).prop_map(Src::Imm),
        prop::sample::select(vec![Special::Tid, Special::LaneId, Special::GlobalTid])
            .prop_map(Src::Special),
        (0u8..2).prop_map(Src::Param),
    ]
}

fn arb_acc_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
    ])
}

fn arb_cmp() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![AluOp::SetLt, AluOp::SetLe, AluOp::SetEq, AluOp::SetNe])
}

/// `in_loop` forbids nested `Loop`s: all loops share the r3 counter,
/// so an inner loop's `mov r3, 0` would make the outer one a (real!)
/// dead write — this generator must only produce lint-clean kernels.
fn arb_stmt(depth: u32, in_loop: bool) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        3 => (arb_acc_op(), arb_src()).prop_map(|(op, src)| Stmt::Acc { op, src }),
        1 => Just(Stmt::Load),
        1 => Just(Stmt::Store),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let body = move || prop::collection::vec(arb_stmt(depth - 1, in_loop), 1..4);
        let ite = prop_oneof![
            1 => (arb_cmp(), -20i32..60, body()).prop_map(|(cmp, threshold, body)| {
                Stmt::IfThen { cmp, threshold, body }
            }),
            1 => (arb_cmp(), -20i32..60, body(), body()).prop_map(
                |(cmp, threshold, then_s, else_s)| Stmt::IfThenElse {
                    cmp,
                    threshold,
                    then_s,
                    else_s,
                }
            ),
        ];
        if in_loop {
            prop_oneof![2 => leaf, 1 => ite].boxed()
        } else {
            let loop_body = prop::collection::vec(arb_stmt(depth - 1, true), 1..4);
            prop_oneof![
                4 => leaf,
                2 => ite,
                1 => ((1u8..5), loop_body).prop_map(|(trips, body)| Stmt::Loop { trips, body }),
            ]
            .boxed()
        }
    }
}

fn emit(b: &mut KernelBuilder, stmts: &[Stmt]) {
    let (gtid, acc, pred, ctr, scratch) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    for s in stmts {
        match s {
            Stmt::Acc { op, src } => {
                let src = match *src {
                    Src::Gtid => Operand::Reg(gtid),
                    Src::Imm(v) => Operand::Imm(v),
                    Src::Special(sp) => Operand::Special(sp),
                    Src::Param(i) => Operand::Param(i),
                };
                b.alu(*op, acc, acc.into(), src);
            }
            Stmt::Load => {
                b.ld(scratch, gtid, 0);
                b.alu(AluOp::Add, acc, acc.into(), scratch.into());
            }
            Stmt::Store => {
                b.st(gtid, 0, acc);
            }
            Stmt::IfThen {
                cmp,
                threshold,
                body,
            } => {
                b.alu(*cmp, pred, gtid.into(), Operand::Imm(*threshold));
                let then_l = b.label();
                let merge = b.label();
                b.bra(pred, then_l, merge);
                b.jmp(merge);
                b.bind(then_l);
                emit(b, body);
                b.bind(merge);
            }
            Stmt::IfThenElse {
                cmp,
                threshold,
                then_s,
                else_s,
            } => {
                b.alu(*cmp, pred, gtid.into(), Operand::Imm(*threshold));
                let then_l = b.label();
                let merge = b.label();
                b.bra(pred, then_l, merge);
                emit(b, else_s);
                b.jmp(merge);
                b.bind(then_l);
                emit(b, then_s);
                b.bind(merge);
            }
            Stmt::Loop { trips, body } => {
                b.mov(ctr, Operand::Imm(0));
                let head = b.here();
                emit(b, body);
                b.alu(AluOp::Add, ctr, ctr.into(), Operand::Imm(1));
                let done = b.label();
                b.alu(
                    AluOp::SetLt,
                    pred,
                    ctr.into(),
                    Operand::Imm(i32::from(*trips)),
                );
                b.bra(pred, head, done);
                b.bind(done);
            }
        }
    }
}

fn lower(stmts: &[Stmt]) -> Kernel {
    let mut b = KernelBuilder::new("generated", NUM_REGS);
    b.mov(Reg(0), Operand::Special(Special::GlobalTid));
    b.alu(AluOp::Add, Reg(1), Reg(0).into(), Operand::Imm(1));
    emit(&mut b, stmts);
    b.st(Reg(0), 0, Reg(1));
    b.exit();
    b.build().expect("generated kernel is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Builder-generated structured kernels never trip any lint, and
    /// liveness statistics are well-formed.
    #[test]
    fn generated_kernels_are_lint_clean(
        stmts in prop::collection::vec(arb_stmt(2, false), 1..6)
    ) {
        let k = lower(&stmts);
        let a = analyze(&k);
        prop_assert!(
            a.report.is_clean(),
            "false positive on:\n{}\ndiagnostics: {:#?}",
            k.disassemble(),
            a.report.diagnostics
        );
        let live = a.liveness.expect("liveness always computed for valid kernels");
        prop_assert!(live.max_live <= usize::from(NUM_REGS));
        prop_assert!(live.avg_live <= live.max_live as f64);
        prop_assert_eq!(live.histogram.iter().sum::<usize>() > 0, true);
        prop_assert!(live.dead_fraction() >= 0.0 && live.dead_fraction() <= 1.0);
    }

    /// The textual round trip preserves the kernel exactly, and the
    /// re-assembled kernel is still lint-clean (labels resolve back to
    /// identical pcs, so no lint may appear or vanish).
    #[test]
    fn round_tripped_kernels_stay_clean(
        stmts in prop::collection::vec(arb_stmt(2, false), 1..6)
    ) {
        let k = lower(&stmts);
        let k2 = assemble(&to_asm(&k)).expect("round trip reassembles");
        prop_assert_eq!(&k2, &k);
        let a = analyze(&k2);
        prop_assert!(
            a.report.is_clean(),
            "round trip introduced diagnostics: {:#?}",
            a.report.diagnostics
        );
    }
}
