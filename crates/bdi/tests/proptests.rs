//! Property-based tests for the BDI codec invariants.

use bdi::{
    explore_best_choice, BdiCodec, ChoiceSet, CompressionIndicator, FixedChoice, WarpRegister,
    BANK_BYTES, WARP_REGISTER_BYTES, WARP_SIZE,
};
use proptest::prelude::*;

fn arb_register() -> impl Strategy<Value = WarpRegister> {
    prop::array::uniform32(any::<u32>()).prop_map(WarpRegister::new)
}

/// Registers biased towards the similar-value patterns GPU code produces.
fn arb_similar_register() -> impl Strategy<Value = WarpRegister> {
    (any::<u32>(), -300i64..300, prop::array::uniform32(-4i64..4)).prop_map(
        |(base, stride, jitter)| {
            WarpRegister::from_fn(|t| {
                let v = base as i64 + stride * t as i64 + jitter[t % WARP_SIZE];
                v as u32
            })
        },
    )
}

proptest! {
    /// Compress-then-decompress is the identity for every register value.
    #[test]
    fn round_trip_identity(reg in arb_register()) {
        let codec = BdiCodec::default();
        let c = codec.compress(&reg);
        prop_assert_eq!(codec.decompress(&c), reg);
    }

    /// Round trip also holds for the similarity-biased distribution that
    /// actually exercises the compressed paths.
    #[test]
    fn round_trip_identity_similar(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let c = codec.compress(&reg);
        prop_assert_eq!(codec.decompress(&c), reg);
    }

    /// The compressed form never occupies more banks than the raw form.
    #[test]
    fn never_expands(reg in arb_register()) {
        let c = BdiCodec::default().compress(&reg);
        prop_assert!(c.banks_required() <= WARP_REGISTER_BYTES / BANK_BYTES);
        prop_assert!(c.stored_len() <= WARP_REGISTER_BYTES);
    }

    /// The indicator always agrees with the actual bank footprint.
    #[test]
    fn indicator_consistent_with_banks(reg in arb_similar_register()) {
        let c = BdiCodec::default().compress(&reg);
        prop_assert_eq!(c.indicator().banks_accessed(), if c.is_compressed() { c.banks_required() } else { 8 });
    }

    /// Nesting (§4): anything <4,0>-compressible is <4,1>-compressible,
    /// and anything <4,1>-compressible is <4,2>-compressible.
    #[test]
    fn choices_are_nested(reg in arb_similar_register()) {
        let c0 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta0)).compress(&reg);
        let c1 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta1)).compress(&reg);
        let c2 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta2)).compress(&reg);
        if c0.is_compressed() {
            prop_assert!(c1.is_compressed());
        }
        if c1.is_compressed() {
            prop_assert!(c2.is_compressed());
        }
    }

    /// The dynamic scheme picks the smallest fitting choice: its bank count
    /// is the minimum over the single-choice codecs.
    #[test]
    fn dynamic_choice_is_optimal_among_fixed(reg in arb_similar_register()) {
        let dynamic = BdiCodec::default().compress(&reg);
        let min_banks = FixedChoice::ALL
            .iter()
            .map(|&ch| BdiCodec::new(ChoiceSet::only(ch)).compress(&reg).banks_required())
            .min()
            .unwrap();
        prop_assert_eq!(dynamic.banks_required(), min_banks);
    }

    /// The full-BDI explorer never does worse than the runtime scheme.
    #[test]
    fn explorer_at_least_as_good(reg in arb_similar_register()) {
        let runtime = BdiCodec::default().compress(&reg);
        let best = explore_best_choice(&reg);
        let explorer_len = best.layout().map_or(WARP_REGISTER_BYTES, |l| l.compressed_len());
        prop_assert!(explorer_len <= runtime.stored_len());
    }

    /// A masked merge with the full mask equals the new value, with the
    /// empty mask equals the old value (divergence-handling invariant).
    #[test]
    fn merge_mask_extremes(a in arb_register(), b in arb_register()) {
        prop_assert_eq!(a.merge_masked(&b, u32::MAX), b);
        prop_assert_eq!(a.merge_masked(&b, 0), a);
    }

    /// Compressing a register twice (decompress then recompress) is stable:
    /// the second pass picks the same representation.
    #[test]
    fn recompression_is_stable(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let once = codec.compress(&reg);
        let twice = codec.compress(&codec.decompress(&once));
        prop_assert_eq!(once, twice);
    }

    /// Indicator bits survive the 2-bit hardware encoding.
    #[test]
    fn indicator_bit_round_trip(reg in arb_similar_register()) {
        let ind = BdiCodec::default().compress(&reg).indicator();
        prop_assert_eq!(CompressionIndicator::from_bits(ind.bits()), ind);
    }
}
