//! Property-based tests for the BDI codec invariants.

use bdi::{
    explore_best_choice, explore_best_choice_reference, BdiCodec, ChoiceSet, CompressionIndicator,
    FixedChoice, WarpRegister, BANK_BYTES, WARP_REGISTER_BYTES, WARP_SIZE,
};
use proptest::prelude::*;

/// Every choice-set shape the codec supports, from the full dynamic
/// scheme down to disabled.
fn all_choice_sets() -> Vec<ChoiceSet> {
    let mut sets = vec![ChoiceSet::warped_compression(), ChoiceSet::disabled()];
    sets.extend(FixedChoice::ALL.iter().map(|&c| ChoiceSet::only(c)));
    sets
}

fn arb_register() -> impl Strategy<Value = WarpRegister> {
    prop::array::uniform32(any::<u32>()).prop_map(WarpRegister::new)
}

/// Registers biased towards the similar-value patterns GPU code produces.
fn arb_similar_register() -> impl Strategy<Value = WarpRegister> {
    (any::<u32>(), -300i64..300, prop::array::uniform32(-4i64..4)).prop_map(
        |(base, stride, jitter)| {
            WarpRegister::from_fn(|t| {
                let v = base as i64 + stride * t as i64 + jitter[t % WARP_SIZE];
                v as u32
            })
        },
    )
}

proptest! {
    /// Compress-then-decompress is the identity for every register value.
    #[test]
    fn round_trip_identity(reg in arb_register()) {
        let codec = BdiCodec::default();
        let c = codec.compress(&reg);
        prop_assert_eq!(codec.decompress(&c), reg);
    }

    /// Round trip also holds for the similarity-biased distribution that
    /// actually exercises the compressed paths.
    #[test]
    fn round_trip_identity_similar(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let c = codec.compress(&reg);
        prop_assert_eq!(codec.decompress(&c), reg);
    }

    /// The compressed form never occupies more banks than the raw form.
    #[test]
    fn never_expands(reg in arb_register()) {
        let c = BdiCodec::default().compress(&reg);
        prop_assert!(c.banks_required() <= WARP_REGISTER_BYTES / BANK_BYTES);
        prop_assert!(c.stored_len() <= WARP_REGISTER_BYTES);
    }

    /// The indicator always agrees with the actual bank footprint.
    #[test]
    fn indicator_consistent_with_banks(reg in arb_similar_register()) {
        let c = BdiCodec::default().compress(&reg);
        prop_assert_eq!(c.indicator().banks_accessed(), if c.is_compressed() { c.banks_required() } else { 8 });
    }

    /// Nesting (§4): anything <4,0>-compressible is <4,1>-compressible,
    /// and anything <4,1>-compressible is <4,2>-compressible.
    #[test]
    fn choices_are_nested(reg in arb_similar_register()) {
        let c0 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta0)).compress(&reg);
        let c1 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta1)).compress(&reg);
        let c2 = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta2)).compress(&reg);
        if c0.is_compressed() {
            prop_assert!(c1.is_compressed());
        }
        if c1.is_compressed() {
            prop_assert!(c2.is_compressed());
        }
    }

    /// The dynamic scheme picks the smallest fitting choice: its bank count
    /// is the minimum over the single-choice codecs.
    #[test]
    fn dynamic_choice_is_optimal_among_fixed(reg in arb_similar_register()) {
        let dynamic = BdiCodec::default().compress(&reg);
        let min_banks = FixedChoice::ALL
            .iter()
            .map(|&ch| BdiCodec::new(ChoiceSet::only(ch)).compress(&reg).banks_required())
            .min()
            .unwrap();
        prop_assert_eq!(dynamic.banks_required(), min_banks);
    }

    /// The full-BDI explorer never does worse than the runtime scheme.
    #[test]
    fn explorer_at_least_as_good(reg in arb_similar_register()) {
        let runtime = BdiCodec::default().compress(&reg);
        let best = explore_best_choice(&reg);
        let explorer_len = best.layout().map_or(WARP_REGISTER_BYTES, |l| l.compressed_len());
        prop_assert!(explorer_len <= runtime.stored_len());
    }

    /// A masked merge with the full mask equals the new value, with the
    /// empty mask equals the old value (divergence-handling invariant).
    #[test]
    fn merge_mask_extremes(a in arb_register(), b in arb_register()) {
        prop_assert_eq!(a.merge_masked(&b, u32::MAX), b);
        prop_assert_eq!(a.merge_masked(&b, 0), a);
    }

    /// Compressing a register twice (decompress then recompress) is stable:
    /// the second pass picks the same representation.
    #[test]
    fn recompression_is_stable(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let once = codec.compress(&reg);
        let twice = codec.compress(&codec.decompress(&once));
        prop_assert_eq!(once, twice);
    }

    /// Indicator bits survive the 2-bit hardware encoding.
    #[test]
    fn indicator_bit_round_trip(reg in arb_similar_register()) {
        let ind = BdiCodec::default().compress(&reg).indicator();
        prop_assert_eq!(CompressionIndicator::from_bits(ind.bits()), ind);
    }

    /// The single-pass compressor is bit-identical to the multi-pass
    /// reference oracle — same choice of layout, same base, same deltas,
    /// same bank footprint — for every choice-set shape, on uniformly
    /// random registers.
    #[test]
    fn single_pass_matches_oracle(reg in arb_register()) {
        for set in all_choice_sets() {
            let codec = BdiCodec::new(set);
            let fast = codec.compress(&reg);
            let slow = codec.compress_reference(&reg);
            prop_assert_eq!(fast.layout(), slow.layout());
            prop_assert_eq!(fast.banks_required(), slow.banks_required());
            prop_assert_eq!(fast, slow); // covers base and deltas too
        }
    }

    /// Oracle equivalence on the similarity-biased distribution, which
    /// actually lands in each of the three compressed layouts.
    #[test]
    fn single_pass_matches_oracle_similar(reg in arb_similar_register()) {
        for set in all_choice_sets() {
            let codec = BdiCodec::new(set);
            prop_assert_eq!(codec.compress(&reg), codec.compress_reference(&reg));
        }
    }

    /// The reference path itself round-trips, so agreement with it is
    /// agreement with a correct compressor.
    #[test]
    fn oracle_round_trips(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let c = codec.compress_reference(&reg);
        prop_assert_eq!(codec.decompress(&c), reg);
    }

    /// The fused single-pass explorer picks the same best choice as the
    /// seven-layout reference scan.
    #[test]
    fn single_pass_explorer_matches_reference(reg in arb_register()) {
        prop_assert_eq!(explore_best_choice(&reg), explore_best_choice_reference(&reg));
    }

    /// Explorer oracle equivalence on the similarity-biased distribution,
    /// where the compressed layouts (including 8-byte bases) actually win.
    #[test]
    fn single_pass_explorer_matches_reference_similar(reg in arb_similar_register()) {
        prop_assert_eq!(explore_best_choice(&reg), explore_best_choice_reference(&reg));
    }
}
