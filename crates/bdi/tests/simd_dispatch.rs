//! Dispatch-tier pinning: every SIMD tier the host CPU can run must be
//! bit-exact against the multi-pass reference oracles and against the
//! scalar tier, through the public API.
//!
//! The in-crate unit tests (`src/simd/mod.rs`) pin the raw kernel
//! tables; this suite pins the *composed* behaviour — `compress`,
//! `decompress`, `classify`, `footprint`, the explorer and the FPC scan
//! — across tiers, over random, similarity-biased and adversarial
//! (mixed-width, sign-boundary) registers. The `WC_FORCE_SCALAR=1` CI
//! job re-runs all of this with the process-wide dispatcher pinned to
//! scalar, covering the environment path end to end.

use bdi::{
    explore_best_choice, explore_best_choice_reference, fpc, BdiCodec, ChoiceSet, FixedChoice,
    SimdTier, WarpRegister, WARP_SIZE,
};
use proptest::prelude::*;

/// One codec per tier the current CPU can run, for a given choice set.
fn codecs(choices: &ChoiceSet) -> Vec<BdiCodec> {
    SimdTier::ALL
        .iter()
        .filter_map(|&tier| BdiCodec::with_tier(choices.clone(), tier))
        .collect()
}

/// The choice sets the repo's experiments actually configure.
fn choice_sets() -> Vec<ChoiceSet> {
    vec![
        ChoiceSet::warped_compression(),
        ChoiceSet::only(FixedChoice::Delta0),
        ChoiceSet::only(FixedChoice::Delta1),
        ChoiceSet::only(FixedChoice::Delta2),
        ChoiceSet::disabled(),
    ]
}

/// Pins every tier against the reference oracle and scalar on one
/// register: compressed form, round trip, class and footprint.
fn assert_all_tiers_pin(reg: &WarpRegister) {
    for choices in choice_sets() {
        let reference = BdiCodec::new(choices.clone()).compress_reference(reg);
        for codec in codecs(&choices) {
            let compressed = codec.compress(reg);
            assert_eq!(
                compressed,
                reference,
                "tier {} disagrees with the multi-pass oracle",
                codec.tier()
            );
            assert_eq!(
                codec.decompress(&compressed),
                *reg,
                "tier {} round trip",
                codec.tier()
            );
            assert_eq!(
                codec.try_decompress(&compressed).as_ref(),
                Ok(reg),
                "tier {} validated round trip",
                codec.tier()
            );
            assert_eq!(
                codec.classify(reg),
                compressed.class(),
                "tier {} early-exit classify",
                codec.tier()
            );
            assert_eq!(
                codec.footprint(reg),
                compressed.banks_required(),
                "tier {} footprint",
                codec.tier()
            );
        }
    }
    assert_eq!(
        explore_best_choice(reg),
        explore_best_choice_reference(reg),
        "explorer oracle"
    );
    assert_eq!(
        fpc::compressed_bits(reg.as_lanes()),
        fpc::compressed_bits_reference(reg.as_lanes()),
        "fpc scan oracle"
    );
}

/// Adversarial fixtures: every width boundary the classification can sit
/// on, wraparound bases, mixed-width lanes and zero-run shapes for FPC.
fn adversarial_registers() -> Vec<WarpRegister> {
    let mut regs = vec![
        WarpRegister::ZERO,
        WarpRegister::splat(u32::MAX),
        WarpRegister::splat(0x8000_0000),
        WarpRegister::from_fn(|t| t as u32),
        WarpRegister::from_fn(|t| u32::MAX.wrapping_add(t as u32)),
        WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9)),
        // Mixed widths: alternating 1-byte and 2-byte deltas.
        WarpRegister::from_fn(|t| 600 + if t % 2 == 0 { t as u32 } else { 400 + t as u32 }),
        // Pairwise 64-bit similarity (exercises the explorer's B8 path).
        WarpRegister::from_fn(|t| if t % 2 == 0 { 0 } else { 0x7000_0000 }),
        // FPC zero runs split across the 8-word vector blocks.
        WarpRegister::from_fn(|t| if (4..23).contains(&t) { 0 } else { 77 }),
        WarpRegister::from_fn(|t| if t % 3 == 0 { 0 } else { 0x0045_FFFF }),
    ];
    // A single outlier lane at each signed-width boundary, in lanes that
    // sit at vector-block edges (0/1, 7/8, 30/31).
    for lane in [1usize, 7, 8, 30, 31] {
        for outlier in [
            127u32,
            128,
            0x7FFF,
            0x8000,
            -128i32 as u32,
            -129i32 as u32,
            -32768i32 as u32,
            -32769i32 as u32,
        ] {
            let mut reg = WarpRegister::splat(1000);
            reg.set_lane(lane, 1000u32.wrapping_add(outlier));
            regs.push(reg);
        }
    }
    regs
}

#[test]
fn every_available_tier_pins_on_adversarial_registers() {
    for reg in adversarial_registers() {
        assert_all_tiers_pin(&reg);
    }
}

#[test]
fn active_tier_is_available_and_named() {
    let active = SimdTier::active();
    assert!(active.is_available());
    assert!(["scalar", "avx2", "neon"].contains(&active.name()));
    // The default codec runs on the dispatched tier.
    assert_eq!(BdiCodec::default().tier(), active);
}

#[test]
fn force_scalar_env_pins_the_default_codec() {
    // This cannot mutate the environment (the dispatch cache is
    // process-wide), but under the scalar-forced CI job it asserts the
    // escape hatch took effect.
    if std::env::var_os("WC_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        assert_eq!(SimdTier::active(), SimdTier::Scalar);
    }
}

#[test]
fn unavailable_tiers_refuse_construction() {
    for tier in SimdTier::ALL {
        assert_eq!(
            BdiCodec::with_tier(ChoiceSet::default(), tier).is_some(),
            tier.is_available()
        );
    }
}

proptest! {
    /// Random registers: all tiers bit-exact vs the oracle, round trips,
    /// class/footprint agreement, explorer and FPC pins.
    #[test]
    fn tiers_pin_on_random_registers(lanes in prop::array::uniform32(any::<u32>())) {
        assert_all_tiers_pin(&WarpRegister::new(lanes));
    }

    /// Similarity-biased registers (stride + jitter), the distribution
    /// that actually lands in the compressed classes.
    #[test]
    fn tiers_pin_on_similar_registers(
        base in any::<u32>(),
        stride in -300i64..300,
        jitter in prop::array::uniform32(-4i64..4),
    ) {
        let reg = WarpRegister::from_fn(|t| {
            (base as i64 + stride * t as i64 + jitter[t % WARP_SIZE]) as u32
        });
        assert_all_tiers_pin(&reg);
    }

    /// Sign-boundary adversary: a splat with one outlier lane whose
    /// delta is drawn tightly around the 1-/2-byte signed limits.
    #[test]
    fn tiers_pin_on_sign_boundary_outliers(
        base in any::<u32>(),
        lane in 1usize..WARP_SIZE,
        boundary in prop::sample::select(vec![0i64, 127, 128, 255, 32767, 32768, 65535]),
        sign in any::<bool>(),
    ) {
        let delta = if sign { -boundary } else { boundary };
        let mut reg = WarpRegister::splat(base);
        reg.set_lane(lane, base.wrapping_add(delta as u32));
        assert_all_tiers_pin(&reg);
    }
}
