//! Inline, allocation-free delta storage for compressed registers.
//!
//! The hardware compressor of Fig. 7 never allocates: the delta lanes come
//! straight out of the subtractor array into the bank-write crossbar.
//! [`DeltaArray`] mirrors that — a fixed inline buffer sized for the widest
//! layout that actually stores deltas, making [`CompressedRegister`]
//! `Copy` and keeping the compress hot path free of heap traffic.
//!
//! Layouts with a zero-byte delta width (⟨4,0⟩, ⟨2,0⟩, ⟨1,0⟩, ⟨8,0⟩) store
//! *no* delta payload in hardware — every chunk equals the base — so the
//! array records only the logical delta count for them. That is what lets
//! the inline buffer stay at 63 slots (the ⟨2,1⟩ maximum) even though
//! ⟨1,0⟩ has 127 logical deltas.
//!
//! [`CompressedRegister`]: crate::compressed::CompressedRegister

use std::fmt;

use serde::{Deserialize, Serialize};

/// Most deltas any delta-*storing* layout produces: ⟨2,1⟩ has 128/2 − 1.
///
/// Zero-width layouts can have more logical deltas (⟨1,0⟩ has 127) but
/// store none of them, so they never touch the inline buffer.
pub const MAX_STORED_DELTAS: usize = 63;

/// Fixed-capacity, `Copy` sequence of sign-extended chunk deltas.
///
/// Two storage forms exist, matching what the hardware writes to banks:
///
/// * **stored** — every logical delta is held in the inline buffer
///   (layouts with `delta_bytes > 0`); built with [`push`] or collected
///   from an iterator.
/// * **zeros** — only the logical count is recorded; every delta is
///   definitionally zero (layouts with `delta_bytes == 0`); built with
///   [`zeros`].
///
/// Equality compares the *logical* delta sequences, so the two forms of
/// "31 zero deltas" compare equal. Every storable delta fits an `i32`
/// (the widest delta is 4 bytes), but the API speaks `i64` to match the
/// sign-extended values the codec arithmetic uses.
///
/// [`push`]: DeltaArray::push
/// [`zeros`]: DeltaArray::zeros
///
/// # Example
///
/// ```
/// use bdi::DeltaArray;
///
/// let stored: DeltaArray = [0i32; 31].into_iter().collect();
/// let implicit = DeltaArray::zeros(31);
/// assert_eq!(stored, implicit);
/// assert_eq!(stored.len(), 31);
/// assert!(stored.iter().all(|d| d == 0));
/// ```
#[derive(Clone, Copy, Serialize, Deserialize)]
pub struct DeltaArray {
    /// Logical number of deltas (chunk count − 1 once fully built).
    logical: u8,
    /// How many of `vals` are in use: equals `logical` in stored form,
    /// 0 in zeros form.
    stored: u8,
    vals: [i32; MAX_STORED_DELTAS],
}

impl DeltaArray {
    /// Inline capacity of the stored form.
    pub const CAPACITY: usize = MAX_STORED_DELTAS;

    /// An empty array in stored form; grow it with [`push`].
    ///
    /// [`push`]: DeltaArray::push
    pub const fn new() -> Self {
        DeltaArray {
            logical: 0,
            stored: 0,
            vals: [0; MAX_STORED_DELTAS],
        }
    }

    /// `count` logical zero deltas with no stored payload — the form a
    /// zero-delta-width layout produces.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds 255 (no layout comes close: the maximum
    /// is 127 logical deltas for ⟨1,0⟩).
    pub fn zeros(count: usize) -> Self {
        let logical = u8::try_from(count).expect("delta count exceeds u8");
        DeltaArray {
            logical,
            stored: 0,
            vals: [0; MAX_STORED_DELTAS],
        }
    }

    /// Stored form holding a copy of `deltas` — the bulk constructor the
    /// single-pass compressor uses once a layout is chosen.
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len() > Self::CAPACITY`.
    pub fn from_stored(deltas: &[i32]) -> Self {
        assert!(
            deltas.len() <= Self::CAPACITY,
            "delta count exceeds inline capacity"
        );
        let mut vals = [0; MAX_STORED_DELTAS];
        vals[..deltas.len()].copy_from_slice(deltas);
        DeltaArray {
            logical: deltas.len() as u8,
            stored: deltas.len() as u8,
            vals,
        }
    }

    /// `count` copies of `delta` in stored form (test/bench convenience).
    ///
    /// # Panics
    ///
    /// Panics if `count > Self::CAPACITY`.
    pub fn filled(count: usize, delta: i32) -> Self {
        assert!(
            count <= Self::CAPACITY,
            "delta count exceeds inline capacity"
        );
        let mut vals = [0; MAX_STORED_DELTAS];
        vals[..count].fill(delta);
        DeltaArray {
            logical: count as u8,
            stored: count as u8,
            vals,
        }
    }

    /// Appends a delta to the stored form.
    ///
    /// # Panics
    ///
    /// Panics if the array is at capacity or in zeros form (callers build
    /// an array in exactly one form).
    pub fn push(&mut self, delta: i32) {
        assert_eq!(
            self.stored, self.logical,
            "cannot push onto a zeros-form DeltaArray"
        );
        let i = usize::from(self.stored);
        assert!(i < Self::CAPACITY, "DeltaArray capacity exceeded");
        self.vals[i] = delta;
        self.stored += 1;
        self.logical += 1;
    }

    /// Number of logical deltas (one per non-base chunk).
    pub fn len(&self) -> usize {
        usize::from(self.logical)
    }

    /// Whether there are no logical deltas.
    pub fn is_empty(&self) -> bool {
        self.logical == 0
    }

    /// The `i`-th logical delta, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<i64> {
        if i < self.len() {
            Some(if self.stored == 0 {
                0
            } else {
                i64::from(self.vals[i])
            })
        } else {
            None
        }
    }

    /// Iterates the logical deltas in chunk order (zeros form yields
    /// `len()` zeros).
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len()).map(move |i| {
            if self.stored == 0 {
                0
            } else {
                i64::from(self.vals[i])
            }
        })
    }

    /// The explicitly stored payload (empty for the zeros form).
    pub fn as_stored(&self) -> &[i32] {
        &self.vals[..usize::from(self.stored)]
    }

    /// Stored form adopting a full sweep buffer without re-copying it —
    /// the constructor the SIMD compress path uses. Slots past `len`
    /// must already be zero (the sweep kernels only write `len` slots
    /// into a zero-initialised buffer), preserving the invariant that
    /// unused slots are zero.
    pub(crate) fn from_raw(vals: [i32; MAX_STORED_DELTAS], len: u8) -> Self {
        debug_assert!(vals[usize::from(len)..].iter().all(|&d| d == 0));
        DeltaArray {
            logical: len,
            stored: len,
            vals,
        }
    }

    /// The full inline buffer, valid in both forms: zeros form holds all
    /// zeros, stored form zero-fills past `len()`. Lets the SIMD
    /// decompress kernel load fixed-width blocks without bounds checks.
    pub(crate) fn raw_vals(&self) -> &[i32; MAX_STORED_DELTAS] {
        &self.vals
    }
}

impl Default for DeltaArray {
    fn default() -> Self {
        DeltaArray::new()
    }
}

impl FromIterator<i32> for DeltaArray {
    /// Collects into the stored form.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`DeltaArray::CAPACITY`]
    /// items.
    fn from_iter<I: IntoIterator<Item = i32>>(iter: I) -> Self {
        let mut arr = DeltaArray::new();
        for d in iter {
            arr.push(d);
        }
        arr
    }
}

impl PartialEq for DeltaArray {
    /// Logical-sequence equality: the zeros form equals a stored form
    /// holding the same number of explicit zeros.
    fn eq(&self, other: &Self) -> bool {
        self.logical == other.logical && self.iter().eq(other.iter())
    }
}

impl Eq for DeltaArray {}

impl fmt::Debug for DeltaArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_round_trip() {
        let mut a = DeltaArray::new();
        a.push(-3);
        a.push(0);
        a.push(127);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![-3, 0, 127]);
        assert_eq!(a.get(2), Some(127));
        assert_eq!(a.get(3), None);
        assert_eq!(a.as_stored(), &[-3, 0, 127]);
    }

    #[test]
    fn zeros_form_reports_logical_zeros_without_storage() {
        let a = DeltaArray::zeros(127);
        assert_eq!(a.len(), 127);
        assert!(a.iter().all(|d| d == 0));
        assert_eq!(a.get(126), Some(0));
        assert!(a.as_stored().is_empty());
    }

    #[test]
    fn zeros_and_stored_zeros_compare_equal() {
        let stored: DeltaArray = std::iter::repeat_n(0, 31).collect();
        assert_eq!(stored, DeltaArray::zeros(31));
        assert_ne!(stored, DeltaArray::zeros(30));
        let nonzero: DeltaArray = std::iter::once(1).collect();
        assert_ne!(nonzero, DeltaArray::zeros(1));
    }

    #[test]
    fn from_stored_copies_slice() {
        let a = DeltaArray::from_stored(&[1, -2, 3]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, -2, 3]);
        assert_eq!(a, [1, -2, 3].into_iter().collect());
    }

    #[test]
    fn filled_matches_collected() {
        let collected: DeltaArray = std::iter::repeat_n(7, 15).collect();
        assert_eq!(DeltaArray::filled(15, 7), collected);
    }

    #[test]
    fn capacity_boundary_is_exact() {
        let a: DeltaArray = (0..63).collect();
        assert_eq!(a.len(), DeltaArray::CAPACITY);
        assert_eq!(a.get(62), Some(62));
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn push_past_capacity_panics() {
        let mut a: DeltaArray = (0..63).collect();
        a.push(63);
    }

    #[test]
    #[should_panic(expected = "zeros-form")]
    fn push_onto_zeros_form_panics() {
        let mut a = DeltaArray::zeros(4);
        a.push(1);
    }
}
