//! The runtime compression choices and the 2-bit range indicator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layout::{BaseSize, ChunkLayout};

/// One of the three fixed runtime compression choices of warped-compression
/// (§4): a 4-byte base with a 0-, 1- or 2-byte delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FixedChoice {
    /// ⟨4,0⟩ — all 32 thread registers identical; 1 bank. This is the
    /// "scalarization" special case (§6.6).
    Delta0,
    /// ⟨4,1⟩ — deltas fit a signed byte; 3 banks.
    Delta1,
    /// ⟨4,2⟩ — deltas fit a signed 16-bit value; 5 banks.
    Delta2,
}

impl FixedChoice {
    /// All three choices, smallest compressed form first — the order the
    /// compressor prefers, since fewer banks means less energy.
    pub const ALL: [FixedChoice; 3] = [
        FixedChoice::Delta0,
        FixedChoice::Delta1,
        FixedChoice::Delta2,
    ];

    /// The ⟨base, delta⟩ layout this choice denotes.
    pub fn layout(self) -> ChunkLayout {
        let delta = match self {
            FixedChoice::Delta0 => 0,
            FixedChoice::Delta1 => 1,
            FixedChoice::Delta2 => 2,
        };
        ChunkLayout::new(BaseSize::B4, delta).expect("fixed choices are valid layouts")
    }

    /// The corresponding range-indicator value.
    pub fn indicator(self) -> CompressionIndicator {
        match self {
            FixedChoice::Delta0 => CompressionIndicator::Delta0,
            FixedChoice::Delta1 => CompressionIndicator::Delta1,
            FixedChoice::Delta2 => CompressionIndicator::Delta2,
        }
    }
}

impl fmt::Display for FixedChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.layout().fmt(f)
    }
}

/// The ordered set of fixed choices a compressor is allowed to try.
///
/// The paper's default tries all three (⟨4,0⟩, then ⟨4,1⟩, then ⟨4,2⟩) and
/// keeps the first that fits — which is also the smallest, since the
/// choices are nested (§4: anything ⟨4,0⟩-compressible is also
/// ⟨4,1⟩-compressible, and so on). The single-choice sets reproduce the
/// design-space exploration of §6.6 (Fig. 15/16).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoiceSet {
    choices: Vec<FixedChoice>,
}

impl ChoiceSet {
    /// The paper's default: dynamically select among all three choices.
    pub fn warped_compression() -> Self {
        ChoiceSet {
            choices: FixedChoice::ALL.to_vec(),
        }
    }

    /// A single-choice set (the §6.6 ablation).
    pub fn only(choice: FixedChoice) -> Self {
        ChoiceSet {
            choices: vec![choice],
        }
    }

    /// An empty set: compression disabled; every register stays
    /// uncompressed.
    pub fn disabled() -> Self {
        ChoiceSet {
            choices: Vec::new(),
        }
    }

    /// The choices in preference order.
    pub fn choices(&self) -> &[FixedChoice] {
        &self.choices
    }

    /// Whether this set never compresses anything.
    pub fn is_disabled(&self) -> bool {
        self.choices.is_empty()
    }

    /// The widest delta width (bytes) any choice in the set accepts, or
    /// `None` for a disabled set. Early-exit classification stops
    /// folding as soon as this bound is exceeded.
    pub(crate) fn max_delta_bytes(&self) -> Option<usize> {
        self.choices.iter().map(|c| c.layout().delta_bytes()).max()
    }
}

impl Default for ChoiceSet {
    fn default() -> Self {
        ChoiceSet::warped_compression()
    }
}

impl FromIterator<FixedChoice> for ChoiceSet {
    fn from_iter<I: IntoIterator<Item = FixedChoice>>(iter: I) -> Self {
        ChoiceSet {
            choices: iter.into_iter().collect(),
        }
    }
}

/// The four-way compression-class taxonomy of the paper: which of the
/// three runtime ⟨4,·⟩ choices a warp register landed in, or none.
///
/// This is the vocabulary shared by the codec (what a register *was*
/// stored as), the Fig. 5 explorer (what the best full-BDI choice *would
/// have been*) and the static predictor in `simt-analysis` (what a write
/// site *must* compress to on every execution). Variants are ordered by
/// bank footprint, so `Ord` means "at most as expensive as" and
/// `a.max(b)` is the conservative join of two observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompressionClass {
    /// ⟨4,0⟩ — all 32 lanes identical; 1 bank.
    Delta0,
    /// ⟨4,1⟩ — deltas from lane 0 fit a signed byte; 3 banks.
    Delta1,
    /// ⟨4,2⟩ — deltas from lane 0 fit a signed 16-bit value; 5 banks.
    Delta2,
    /// No runtime choice fits; the register occupies all 8 banks.
    Uncompressed,
}

impl CompressionClass {
    /// All four classes, cheapest bank footprint first.
    pub const ALL: [CompressionClass; 4] = [
        CompressionClass::Delta0,
        CompressionClass::Delta1,
        CompressionClass::Delta2,
        CompressionClass::Uncompressed,
    ];

    /// Number of 16-byte register banks a register of this class occupies
    /// (§5: 1, 3, 5 or all 8).
    pub fn banks(self) -> usize {
        match self {
            CompressionClass::Delta0 => 1,
            CompressionClass::Delta1 => 3,
            CompressionClass::Delta2 => 5,
            CompressionClass::Uncompressed => 8,
        }
    }

    /// Stable lower-case label, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CompressionClass::Delta0 => "delta0",
            CompressionClass::Delta1 => "delta1",
            CompressionClass::Delta2 => "delta2",
            CompressionClass::Uncompressed => "uncompressed",
        }
    }

    /// Whether this class denotes a compressed register.
    pub fn is_compressed(self) -> bool {
        self != CompressionClass::Uncompressed
    }
}

impl fmt::Display for CompressionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<FixedChoice> for CompressionClass {
    fn from(choice: FixedChoice) -> Self {
        match choice {
            FixedChoice::Delta0 => CompressionClass::Delta0,
            FixedChoice::Delta1 => CompressionClass::Delta1,
            FixedChoice::Delta2 => CompressionClass::Delta2,
        }
    }
}

impl From<CompressionIndicator> for CompressionClass {
    fn from(ind: CompressionIndicator) -> Self {
        match ind {
            CompressionIndicator::Uncompressed => CompressionClass::Uncompressed,
            CompressionIndicator::Delta0 => CompressionClass::Delta0,
            CompressionIndicator::Delta1 => CompressionClass::Delta1,
            CompressionIndicator::Delta2 => CompressionClass::Delta2,
        }
    }
}

impl From<CompressionClass> for CompressionIndicator {
    fn from(class: CompressionClass) -> Self {
        match class {
            CompressionClass::Uncompressed => CompressionIndicator::Uncompressed,
            CompressionClass::Delta0 => CompressionIndicator::Delta0,
            CompressionClass::Delta1 => CompressionIndicator::Delta1,
            CompressionClass::Delta2 => CompressionIndicator::Delta2,
        }
    }
}

/// The 2-bit compression-range indicator kept per warp register in the
/// bank arbiter (§4): tells the arbiter how many banks hold the register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompressionIndicator {
    /// Register stored verbatim across all 8 banks.
    Uncompressed,
    /// ⟨4,0⟩ — 1 bank.
    Delta0,
    /// ⟨4,1⟩ — 3 banks.
    Delta1,
    /// ⟨4,2⟩ — 5 banks.
    Delta2,
}

impl CompressionIndicator {
    /// Encodes the indicator as its 2-bit hardware value.
    pub fn bits(self) -> u8 {
        match self {
            CompressionIndicator::Uncompressed => 0b00,
            CompressionIndicator::Delta0 => 0b01,
            CompressionIndicator::Delta1 => 0b10,
            CompressionIndicator::Delta2 => 0b11,
        }
    }

    /// Decodes a 2-bit hardware value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11` — the caller owns masking to two bits.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0b00 => CompressionIndicator::Uncompressed,
            0b01 => CompressionIndicator::Delta0,
            0b10 => CompressionIndicator::Delta1,
            0b11 => CompressionIndicator::Delta2,
            _ => panic!("compression indicator is a 2-bit field, got {bits:#b}"),
        }
    }

    /// Number of register banks the arbiter must access for a register in
    /// this state (§5: 1, 3, 5 or all 8).
    pub fn banks_accessed(self) -> usize {
        self.class().banks()
    }

    /// The compression class this indicator denotes.
    pub fn class(self) -> CompressionClass {
        CompressionClass::from(self)
    }

    /// Maps a layout back to its indicator, if it is one of the three
    /// runtime choices.
    pub fn from_layout(layout: ChunkLayout) -> Option<Self> {
        if layout.base() != BaseSize::B4 {
            return None;
        }
        match layout.delta_bytes() {
            0 => Some(CompressionIndicator::Delta0),
            1 => Some(CompressionIndicator::Delta1),
            2 => Some(CompressionIndicator::Delta2),
            _ => None,
        }
    }

    /// Whether the indicator denotes a compressed register.
    pub fn is_compressed(self) -> bool {
        self != CompressionIndicator::Uncompressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_choice_layouts_match_table_one() {
        assert_eq!(FixedChoice::Delta0.layout().banks_required(), 1);
        assert_eq!(FixedChoice::Delta1.layout().banks_required(), 3);
        assert_eq!(FixedChoice::Delta2.layout().banks_required(), 5);
    }

    #[test]
    fn all_is_ordered_smallest_first() {
        let sizes: Vec<usize> = FixedChoice::ALL
            .iter()
            .map(|c| c.layout().compressed_len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn indicator_bits_round_trip() {
        for ind in [
            CompressionIndicator::Uncompressed,
            CompressionIndicator::Delta0,
            CompressionIndicator::Delta1,
            CompressionIndicator::Delta2,
        ] {
            assert_eq!(CompressionIndicator::from_bits(ind.bits()), ind);
        }
    }

    #[test]
    #[should_panic(expected = "2-bit field")]
    fn indicator_rejects_wide_bits() {
        let _ = CompressionIndicator::from_bits(4);
    }

    #[test]
    fn banks_accessed_matches_section_5() {
        assert_eq!(CompressionIndicator::Uncompressed.banks_accessed(), 8);
        assert_eq!(CompressionIndicator::Delta0.banks_accessed(), 1);
        assert_eq!(CompressionIndicator::Delta1.banks_accessed(), 3);
        assert_eq!(CompressionIndicator::Delta2.banks_accessed(), 5);
    }

    #[test]
    fn indicator_from_layout_rejects_8_byte_bases() {
        let l = ChunkLayout::new(BaseSize::B8, 2).unwrap();
        assert_eq!(CompressionIndicator::from_layout(l), None);
    }

    #[test]
    fn choice_set_constructors() {
        assert_eq!(ChoiceSet::warped_compression().choices().len(), 3);
        assert_eq!(
            ChoiceSet::only(FixedChoice::Delta1).choices(),
            &[FixedChoice::Delta1]
        );
        assert!(ChoiceSet::disabled().is_disabled());
        let collected: ChoiceSet = [FixedChoice::Delta2].into_iter().collect();
        assert_eq!(collected.choices(), &[FixedChoice::Delta2]);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(FixedChoice::Delta1.to_string(), "<4,1>");
    }

    #[test]
    fn class_banks_match_indicator() {
        for ind in [
            CompressionIndicator::Uncompressed,
            CompressionIndicator::Delta0,
            CompressionIndicator::Delta1,
            CompressionIndicator::Delta2,
        ] {
            assert_eq!(ind.class().banks(), ind.banks_accessed());
            assert_eq!(CompressionIndicator::from(ind.class()), ind);
        }
    }

    #[test]
    fn class_order_is_footprint_order() {
        let banks: Vec<usize> = CompressionClass::ALL.iter().map(|c| c.banks()).collect();
        assert!(banks.windows(2).all(|w| w[0] < w[1]));
        assert!(CompressionClass::Delta0 < CompressionClass::Uncompressed);
        assert_eq!(
            CompressionClass::Delta1.max(CompressionClass::Delta2),
            CompressionClass::Delta2
        );
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(CompressionClass::Delta0.name(), "delta0");
        assert_eq!(CompressionClass::Uncompressed.to_string(), "uncompressed");
        assert!(CompressionClass::Delta2.is_compressed());
        assert!(!CompressionClass::Uncompressed.is_compressed());
        assert_eq!(CompressionClass::from(FixedChoice::Delta2).banks(), 5);
    }
}
