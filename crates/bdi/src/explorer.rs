//! Full BDI design-space exploration (paper §4, Fig. 5).
//!
//! The original BDI algorithm tries every ⟨base, delta⟩ pair and keeps the
//! one with the highest compression ratio. Warped-compression rejects that
//! at runtime (too slow / too much energy) but the paper runs it offline to
//! justify restricting the hardware to 4-byte bases — Fig. 5 shows 8-byte
//! bases are almost never the best choice. This module reproduces that
//! study.

use serde::Serialize;

use crate::codec::{compress_with_layout, decompress};
use crate::layout::{BaseSize, ChunkLayout};
use crate::register::WarpRegister;
use crate::simd::{kernels, scalar};

/// The seven ⟨base, delta⟩ parameter pairs the paper's explorer evaluates
/// on every register write (§4): `<4,0>, <4,1>, <4,2>, <8,0>, <8,1>,
/// <8,2>, <8,4>`.
pub const EXPLORER_CHOICES: [(BaseSize, usize); 7] = [
    (BaseSize::B4, 0),
    (BaseSize::B4, 1),
    (BaseSize::B4, 2),
    (BaseSize::B8, 0),
    (BaseSize::B8, 1),
    (BaseSize::B8, 2),
    (BaseSize::B8, 4),
];

/// Result of the full-BDI exploration for one register write.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum BestChoice {
    /// The layout achieving the highest compression ratio.
    Layout(ChunkLayout),
    /// No explored layout fit; the register is incompressible.
    Uncompressed,
}

impl BestChoice {
    /// The chosen layout, if any.
    pub fn layout(self) -> Option<ChunkLayout> {
        match self {
            BestChoice::Layout(l) => Some(l),
            BestChoice::Uncompressed => None,
        }
    }
}

/// Runs the full BDI explorer on one register value and returns the
/// best-compressing ⟨base, delta⟩ pair (ties broken towards the 4-byte
/// base, which appears first in [`EXPLORER_CHOICES`]).
///
/// # Example
///
/// ```
/// use bdi::{explore_best_choice, WarpRegister, BaseSize};
///
/// let reg = WarpRegister::from_fn(|t| 40 + t as u32);
/// let best = explore_best_choice(&reg).layout().unwrap();
/// assert_eq!(best.base(), BaseSize::B4);
/// assert_eq!(best.delta_bytes(), 1);
/// ```
pub fn explore_best_choice(reg: &WarpRegister) -> BestChoice {
    // Two width folds over the register — 4-byte chunks (== lanes) and
    // 8-byte chunks (lane pairs) — on the runtime-dispatched kernel
    // tier: `bits` detects exact-zero deltas; `mag` folds the
    // sign-folded pattern `d ^ (d >> n-1)`, which is < 2^(8w-1) exactly
    // when every delta fits a w-byte signed value — the software analog
    // of the hardware's parallel comparator array (Fig. 7). The fold→
    // width decision lives in one shared scalar helper per chunk size,
    // the same one the codec's compress path uses.
    let lanes = reg.as_lanes();
    let k = kernels();
    let (bits4, mag4) = k.fold4(lanes);
    let (bits8, mag8) = k.fold8(lanes);
    // Narrowest fitting delta width per base; any wider same-base layout
    // is strictly larger, so only these two candidates can win.
    let width4 = scalar::width4_of_fold(bits4, mag4);
    let width8 = scalar::width8_of_fold(bits8, mag8);
    let layout = |base, w: Option<usize>| {
        w.map(|w| ChunkLayout::new(base, w).expect("explorer widths are valid"))
    };
    let best = match (layout(BaseSize::B4, width4), layout(BaseSize::B8, width8)) {
        (None, None) => BestChoice::Uncompressed,
        (Some(l), None) | (None, Some(l)) => BestChoice::Layout(l),
        // Ties break towards the 4-byte base, which the reference scan
        // visits first.
        (Some(l4), Some(l8)) => BestChoice::Layout(if l8.compressed_len() < l4.compressed_len() {
            l8
        } else {
            l4
        }),
    };
    debug_assert_eq!(
        best,
        explore_best_choice_reference(reg),
        "single-pass explorer oracle"
    );
    best
}

/// Reference implementation of [`explore_best_choice`]: compresses the
/// register once per explored layout and keeps the smallest result.
///
/// Kept as the oracle the property tests compare the single-pass explorer
/// against (and re-checked by a `debug_assert` on every exploration in
/// debug builds); not intended for production use.
pub fn explore_best_choice_reference(reg: &WarpRegister) -> BestChoice {
    let mut best: Option<ChunkLayout> = None;
    for &(base, delta) in EXPLORER_CHOICES.iter() {
        let layout = ChunkLayout::new(base, delta).expect("explorer choices are valid");
        if let Some(c) = compress_with_layout(reg, layout) {
            debug_assert_eq!(decompress(&c), *reg, "explorer round-trip");
            match best {
                Some(b) if b.compressed_len() <= layout.compressed_len() => {}
                _ => best = Some(layout),
            }
        }
    }
    match best {
        Some(layout) => BestChoice::Layout(layout),
        None => BestChoice::Uncompressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_register_picks_4_0() {
        let best = explore_best_choice(&WarpRegister::splat(9))
            .layout()
            .unwrap();
        assert_eq!((best.base(), best.delta_bytes()), (BaseSize::B4, 0));
    }

    #[test]
    fn tid_pattern_picks_4_1() {
        let reg = WarpRegister::from_fn(|t| t as u32);
        let best = explore_best_choice(&reg).layout().unwrap();
        assert_eq!((best.base(), best.delta_bytes()), (BaseSize::B4, 1));
    }

    #[test]
    fn random_register_is_uncompressed() {
        let reg = WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x85EB_CA6B));
        assert_eq!(explore_best_choice(&reg), BestChoice::Uncompressed);
    }

    #[test]
    fn pairwise_similarity_picks_8_byte_base() {
        // Alternating pattern {X, Y, X, Y, ...} where X and Y differ by a
        // huge amount: 4-byte deltas blow past 16 bits, but the 64-bit
        // chunks are all identical, so <8,0> wins. This is the (rare,
        // per Fig. 5) case where an 8-byte base is strictly better.
        let reg = WarpRegister::from_fn(|t| if t % 2 == 0 { 0 } else { 0x7000_0000 });
        let best = explore_best_choice(&reg).layout().unwrap();
        assert_eq!((best.base(), best.delta_bytes()), (BaseSize::B8, 0));
    }

    #[test]
    fn tie_between_4_and_8_base_prefers_4() {
        // Zero register: <4,0> (4 B) beats <8,0> (8 B) on size, and would
        // win the tie-break anyway.
        let best = explore_best_choice(&WarpRegister::ZERO).layout().unwrap();
        assert_eq!(best.base(), BaseSize::B4);
    }

    #[test]
    fn wide_stride_picks_4_2_over_8_4() {
        // Stride of 1000: 4-byte deltas fit 16 bits (<4,2>, 66 B); 8-byte
        // chunks differ by ~2^32 multiples so <8,4> does not fit at all.
        let reg = WarpRegister::from_fn(|t| 1000 * t as u32);
        let best = explore_best_choice(&reg).layout().unwrap();
        assert_eq!((best.base(), best.delta_bytes()), (BaseSize::B4, 2));
    }
}
