//! Static ⟨base, delta⟩ layout math: paper Eq. (1) and Table 1.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::LayoutError;
use crate::register::WARP_REGISTER_BYTES;

/// Width of one register bank entry in bytes (128 bits, paper §2.1).
pub const BANK_BYTES: usize = 16;

/// Legal BDI base-chunk sizes.
///
/// The paper's Table 1 explores 1-, 2-, 4- and 8-byte bases; the runtime
/// scheme only ever uses [`BaseSize::B4`] because GPU thread registers are
/// written at 4-byte granularity (§4, Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BaseSize {
    /// 1-byte chunks.
    B1,
    /// 2-byte chunks.
    B2,
    /// 4-byte chunks (one thread register per chunk).
    B4,
    /// 8-byte chunks (a pair of thread registers per chunk).
    B8,
}

impl BaseSize {
    /// The chunk width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            BaseSize::B1 => 1,
            BaseSize::B2 => 2,
            BaseSize::B4 => 4,
            BaseSize::B8 => 8,
        }
    }
}

impl fmt::Display for BaseSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// A ⟨base, delta⟩ BDI parameter pair, written `<X,Y>` in the paper.
///
/// `base` is the chunk width; `delta_bytes` is the width used to store
/// each non-base chunk's signed difference from the base (0 means every
/// chunk must equal the base exactly).
///
/// # Example
///
/// ```
/// use bdi::{BaseSize, ChunkLayout};
///
/// let l = ChunkLayout::new(BaseSize::B4, 1).unwrap();
/// assert_eq!(l.compressed_len(), 35);  // 4 + 1 * 31   (Eq. 1)
/// assert_eq!(l.banks_required(), 3);   // ceil(35 / 16)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkLayout {
    base: BaseSize,
    delta_bytes: usize,
}

impl ChunkLayout {
    /// Creates a layout, validating that the delta is strictly narrower
    /// than the base (otherwise "compression" would not shrink anything).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if `delta_bytes >= base.bytes()` or the
    /// delta width is not one of 0, 1, 2 or 4 bytes.
    pub fn new(base: BaseSize, delta_bytes: usize) -> Result<Self, LayoutError> {
        if !matches!(delta_bytes, 0 | 1 | 2 | 4) || delta_bytes >= base.bytes() {
            return Err(LayoutError {
                base_bytes: base.bytes(),
                delta_bytes,
            });
        }
        Ok(ChunkLayout { base, delta_bytes })
    }

    /// The base-chunk size.
    pub fn base(self) -> BaseSize {
        self.base
    }

    /// The delta width in bytes.
    pub fn delta_bytes(self) -> usize {
        self.delta_bytes
    }

    /// Number of chunks a 128-byte warp register splits into.
    pub fn chunk_count(self) -> usize {
        WARP_REGISTER_BYTES / self.base.bytes()
    }

    /// Compressed length in bytes for a 128-byte warp register —
    /// the paper's Eq. (1): `L_base + L_delta * (L_input/L_base - 1)`.
    pub fn compressed_len(self) -> usize {
        self.base.bytes() + self.delta_bytes * (self.chunk_count() - 1)
    }

    /// Number of 16-byte register banks needed to hold the compressed
    /// register (Table 1, "Required # Reg. Banks").
    pub fn banks_required(self) -> usize {
        self.compressed_len().div_ceil(BANK_BYTES)
    }

    /// Compression ratio relative to the uncompressed 128-byte register.
    pub fn compression_ratio(self) -> f64 {
        WARP_REGISTER_BYTES as f64 / self.compressed_len() as f64
    }

    /// Whether a signed delta `d` (computed as wrapping chunk − base) is
    /// representable at this layout's delta width.
    pub fn delta_fits(self, delta: i64) -> bool {
        match self.delta_bytes {
            0 => delta == 0,
            1 => i8::try_from(delta).is_ok(),
            2 => i16::try_from(delta).is_ok(),
            4 => i32::try_from(delta).is_ok(),
            _ => unreachable!("validated in ChunkLayout::new"),
        }
    }
}

impl fmt::Display for ChunkLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.base, self.delta_bytes)
    }
}

/// One row of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TableOneRow {
    /// Base chunk size in bytes.
    pub base_bytes: usize,
    /// Delta size in bytes.
    pub delta_bytes: usize,
    /// Compressed size in bytes (Eq. 1).
    pub compressed_bytes: usize,
    /// Register banks needed (16 B each).
    pub banks_required: usize,
    /// Whether warped-compression uses this combination at runtime.
    pub used: bool,
}

/// The paper's Table 1: every ⟨base, delta⟩ combination considered, with
/// its static compressed size and bank count. Regenerate it with
/// [`table_one`] and compare — the unit tests do exactly that.
pub const TABLE_ONE: [TableOneRow; 9] = [
    TableOneRow {
        base_bytes: 1,
        delta_bytes: 0,
        compressed_bytes: 1,
        banks_required: 1,
        used: false,
    },
    TableOneRow {
        base_bytes: 2,
        delta_bytes: 1,
        compressed_bytes: 65,
        banks_required: 5,
        used: false,
    },
    TableOneRow {
        base_bytes: 4,
        delta_bytes: 0,
        compressed_bytes: 4,
        banks_required: 1,
        used: true,
    },
    TableOneRow {
        base_bytes: 4,
        delta_bytes: 1,
        compressed_bytes: 35,
        banks_required: 3,
        used: true,
    },
    TableOneRow {
        base_bytes: 4,
        delta_bytes: 2,
        compressed_bytes: 66,
        banks_required: 5,
        used: true,
    },
    TableOneRow {
        base_bytes: 8,
        delta_bytes: 0,
        compressed_bytes: 8,
        banks_required: 1,
        used: false,
    },
    TableOneRow {
        base_bytes: 8,
        delta_bytes: 1,
        compressed_bytes: 23,
        banks_required: 2,
        used: false,
    },
    TableOneRow {
        base_bytes: 8,
        delta_bytes: 2,
        compressed_bytes: 38,
        banks_required: 3,
        used: false,
    },
    TableOneRow {
        base_bytes: 8,
        delta_bytes: 4,
        compressed_bytes: 68,
        banks_required: 5,
        used: false,
    },
];

/// Recomputes Table 1 from Eq. (1), as a cross-check of the static table.
pub fn table_one() -> Vec<TableOneRow> {
    let combos: [(BaseSize, usize, bool); 9] = [
        (BaseSize::B1, 0, false),
        (BaseSize::B2, 1, false),
        (BaseSize::B4, 0, true),
        (BaseSize::B4, 1, true),
        (BaseSize::B4, 2, true),
        (BaseSize::B8, 0, false),
        (BaseSize::B8, 1, false),
        (BaseSize::B8, 2, false),
        (BaseSize::B8, 4, false),
    ];
    combos
        .iter()
        .map(|&(base, delta, used)| {
            let layout = ChunkLayout::new(base, delta).expect("table rows are valid layouts");
            TableOneRow {
                base_bytes: base.bytes(),
                delta_bytes: delta,
                compressed_bytes: layout.compressed_len(),
                banks_required: layout.banks_required(),
                used,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_examples() {
        // <2,1>: 64 chunks, 2 + 1*63 = 65 B -> 5 banks (paper §4).
        let l = ChunkLayout::new(BaseSize::B2, 1).unwrap();
        assert_eq!(l.compressed_len(), 65);
        assert_eq!(l.banks_required(), 5);
        // <4,1>: 4 + 31 = 35 B -> 3 banks.
        let l = ChunkLayout::new(BaseSize::B4, 1).unwrap();
        assert_eq!(l.compressed_len(), 35);
        assert_eq!(l.banks_required(), 3);
        // <8,1>: 8 + 15 = 23 B -> 2 banks.
        let l = ChunkLayout::new(BaseSize::B8, 1).unwrap();
        assert_eq!(l.compressed_len(), 23);
        assert_eq!(l.banks_required(), 2);
    }

    #[test]
    fn static_table_matches_recomputed_table() {
        assert_eq!(table_one().as_slice(), &TABLE_ONE[..]);
    }

    #[test]
    fn delta_zero_means_exact_match_only() {
        let l = ChunkLayout::new(BaseSize::B4, 0).unwrap();
        assert!(l.delta_fits(0));
        assert!(!l.delta_fits(1));
        assert!(!l.delta_fits(-1));
    }

    #[test]
    fn delta_one_byte_is_signed() {
        let l = ChunkLayout::new(BaseSize::B4, 1).unwrap();
        assert!(l.delta_fits(127));
        assert!(l.delta_fits(-128));
        assert!(!l.delta_fits(128));
        assert!(!l.delta_fits(-129));
    }

    #[test]
    fn delta_two_bytes_is_signed_16() {
        let l = ChunkLayout::new(BaseSize::B4, 2).unwrap();
        assert!(l.delta_fits(32767));
        assert!(l.delta_fits(-32768));
        assert!(!l.delta_fits(32768));
    }

    #[test]
    fn delta_must_be_narrower_than_base() {
        assert!(ChunkLayout::new(BaseSize::B4, 4).is_err());
        assert!(ChunkLayout::new(BaseSize::B1, 1).is_err());
        assert!(ChunkLayout::new(BaseSize::B2, 2).is_err());
    }

    #[test]
    fn delta_width_must_be_supported() {
        assert!(ChunkLayout::new(BaseSize::B8, 3).is_err());
    }

    #[test]
    fn chunk_counts() {
        assert_eq!(ChunkLayout::new(BaseSize::B4, 1).unwrap().chunk_count(), 32);
        assert_eq!(ChunkLayout::new(BaseSize::B8, 2).unwrap().chunk_count(), 16);
        assert_eq!(ChunkLayout::new(BaseSize::B2, 1).unwrap().chunk_count(), 64);
    }

    #[test]
    fn compression_ratio_of_4_0_is_32x() {
        let l = ChunkLayout::new(BaseSize::B4, 0).unwrap();
        assert!((l.compression_ratio() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_notation() {
        let l = ChunkLayout::new(BaseSize::B4, 2).unwrap();
        assert_eq!(l.to_string(), "<4,2>");
    }
}
