//! The warp register: 32 thread registers accessed as one unit.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Number of threads in a warp (NVIDIA/CUDA convention, paper §2.1).
pub const WARP_SIZE: usize = 32;

/// Width of a warp register in bytes: 32 threads × 4-byte thread registers.
pub const WARP_REGISTER_BYTES: usize = WARP_SIZE * 4;

/// One architectural register as seen by a warp instruction: the 32-bit
/// value held by each of the 32 threads of the warp.
///
/// This is the unit that warped-compression compresses. The paper calls
/// this a *warp register* and the per-thread 32-bit values *thread
/// registers*.
///
/// # Example
///
/// ```
/// use bdi::WarpRegister;
///
/// let reg = WarpRegister::splat(7);
/// assert_eq!(reg[31], 7);
/// assert!(reg.lanes().all(|v| v == 7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WarpRegister([u32; WARP_SIZE]);

impl WarpRegister {
    /// A register whose 32 thread registers are all zero.
    pub const ZERO: WarpRegister = WarpRegister([0; WARP_SIZE]);

    /// Creates a register from the 32 per-thread values.
    pub fn new(lanes: [u32; WARP_SIZE]) -> Self {
        WarpRegister(lanes)
    }

    /// Creates a register where every thread holds the same value.
    ///
    /// This is the *uniform* (scalar) pattern: compressible with ⟨4,0⟩.
    pub fn splat(value: u32) -> Self {
        WarpRegister([value; WARP_SIZE])
    }

    /// Creates a register from a function of the thread index (lane id).
    ///
    /// ```
    /// use bdi::WarpRegister;
    /// let tid = WarpRegister::from_fn(|t| t as u32);
    /// assert_eq!(tid[5], 5);
    /// ```
    pub fn from_fn(mut f: impl FnMut(usize) -> u32) -> Self {
        let mut lanes = [0u32; WARP_SIZE];
        for (tid, lane) in lanes.iter_mut().enumerate() {
            *lane = f(tid);
        }
        WarpRegister(lanes)
    }

    /// The value held by thread `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_SIZE`.
    pub fn lane(&self, lane: usize) -> u32 {
        self.0[lane]
    }

    /// Sets the value held by thread `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_SIZE`.
    pub fn set_lane(&mut self, lane: usize, value: u32) {
        self.0[lane] = value;
    }

    /// Iterates over the 32 thread-register values in lane order.
    pub fn lanes(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    /// Borrows the lane array directly.
    pub fn as_lanes(&self) -> &[u32; WARP_SIZE] {
        &self.0
    }

    /// The little-endian byte image of the register (128 bytes), which is
    /// what the BDI chunking operates on.
    pub fn to_bytes(self) -> [u8; WARP_REGISTER_BYTES] {
        let mut bytes = [0u8; WARP_REGISTER_BYTES];
        for (i, v) in self.0.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        bytes
    }

    /// Rebuilds a register from its little-endian byte image.
    pub fn from_bytes(bytes: &[u8; WARP_REGISTER_BYTES]) -> Self {
        let mut lanes = [0u32; WARP_SIZE];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
        WarpRegister(lanes)
    }

    /// Merges `other` into `self` for the lanes whose bit is set in
    /// `active_mask` (bit *i* ↔ thread *i*).
    ///
    /// This models a divergent write: only the active threads update their
    /// thread register, the rest keep the previous value.
    ///
    /// ```
    /// use bdi::WarpRegister;
    /// let old = WarpRegister::splat(1);
    /// let new = WarpRegister::splat(9);
    /// let merged = old.merge_masked(&new, 0x1);
    /// assert_eq!(merged[0], 9);
    /// assert_eq!(merged[1], 1);
    /// ```
    pub fn merge_masked(&self, other: &WarpRegister, active_mask: u32) -> WarpRegister {
        WarpRegister::from_fn(|tid| {
            if active_mask & (1 << tid) != 0 {
                other.0[tid]
            } else {
                self.0[tid]
            }
        })
    }

    /// The maximum arithmetic distance between successive thread registers,
    /// the similarity metric used throughout the paper (§1, §3).
    ///
    /// Returns `None` for the degenerate single-lane case (never happens
    /// with `WARP_SIZE` = 32).
    pub fn max_successive_distance(&self) -> Option<u64> {
        self.0
            .windows(2)
            .map(|w| (i64::from(w[1]) - i64::from(w[0])).unsigned_abs())
            .max()
    }
}

impl Default for WarpRegister {
    fn default() -> Self {
        WarpRegister::ZERO
    }
}

impl Index<usize> for WarpRegister {
    type Output = u32;

    fn index(&self, lane: usize) -> &u32 {
        &self.0[lane]
    }
}

impl IndexMut<usize> for WarpRegister {
    fn index_mut(&mut self, lane: usize) -> &mut u32 {
        &mut self.0[lane]
    }
}

impl From<[u32; WARP_SIZE]> for WarpRegister {
    fn from(lanes: [u32; WARP_SIZE]) -> Self {
        WarpRegister(lanes)
    }
}

impl fmt::Debug for WarpRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WarpRegister[{:#x}", self.0[0])?;
        for v in &self.0[1..] {
            write!(f, ", {v:#x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_fills_all_lanes() {
        let r = WarpRegister::splat(0xdead_beef);
        assert!(r.lanes().all(|v| v == 0xdead_beef));
    }

    #[test]
    fn byte_round_trip() {
        let r = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x0101_0101));
        assert_eq!(WarpRegister::from_bytes(&r.to_bytes()), r);
    }

    #[test]
    fn bytes_are_little_endian_per_lane() {
        let r = WarpRegister::from_fn(|t| if t == 1 { 0x0403_0201 } else { 0 });
        let b = r.to_bytes();
        assert_eq!(&b[4..8], &[0x01, 0x02, 0x03, 0x04]);
    }

    #[test]
    fn merge_masked_selects_lanes() {
        let old = WarpRegister::from_fn(|t| t as u32);
        let new = WarpRegister::splat(100);
        let merged = old.merge_masked(&new, 0xAAAA_AAAA);
        for t in 0..WARP_SIZE {
            if t % 2 == 1 {
                assert_eq!(merged[t], 100);
            } else {
                assert_eq!(merged[t], t as u32);
            }
        }
    }

    #[test]
    fn merge_with_full_mask_replaces_everything() {
        let old = WarpRegister::splat(1);
        let new = WarpRegister::from_fn(|t| t as u32 * 3);
        assert_eq!(old.merge_masked(&new, u32::MAX), new);
    }

    #[test]
    fn merge_with_empty_mask_is_identity() {
        let old = WarpRegister::from_fn(|t| t as u32 + 9);
        let new = WarpRegister::splat(0);
        assert_eq!(old.merge_masked(&new, 0), old);
    }

    #[test]
    fn successive_distance_of_uniform_register_is_zero() {
        assert_eq!(WarpRegister::splat(42).max_successive_distance(), Some(0));
    }

    #[test]
    fn successive_distance_of_tid_register_is_one() {
        let r = WarpRegister::from_fn(|t| 1000 + t as u32);
        assert_eq!(r.max_successive_distance(), Some(1));
    }

    #[test]
    fn successive_distance_handles_extremes() {
        let mut r = WarpRegister::splat(0);
        r.set_lane(1, u32::MAX);
        assert_eq!(r.max_successive_distance(), Some(u64::from(u32::MAX)));
    }

    #[test]
    fn index_mut_writes_through() {
        let mut r = WarpRegister::ZERO;
        r[7] = 99;
        assert_eq!(r.lane(7), 99);
    }
}
