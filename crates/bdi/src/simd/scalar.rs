//! Portable scalar kernels — the fallback tier and the bit-exactness
//! reference for the vector tiers.
//!
//! This module is also the **single scalar source of truth** for the
//! width-fold arithmetic: [`width4_of_fold`] / [`width8_of_fold`] hold
//! the fold→width decision that used to be duplicated between the codec
//! and the explorer, and every tier (scalar, AVX2, NEON) funnels its
//! fold accumulators through them.

use crate::deltas::MAX_STORED_DELTAS;
use crate::register::WARP_SIZE;

use super::{KernelFns, Kernels, SimdTier};

/// The scalar kernel table. The entries are all safe functions; they
/// coerce to the table's `unsafe fn` pointers with no preconditions.
pub(crate) static KERNELS: Kernels = Kernels::new(
    SimdTier::Scalar,
    KernelFns {
        fold4,
        fold8,
        sweep4,
        width4_bounded,
        decompress4,
        fpc_scan: crate::fpc::fpc_scan_scalar,
    },
);

/// Narrowest delta width (0/1/2 bytes) a folded 4-byte sweep admits, or
/// `None` when not even 2-byte deltas fit (a 4-byte delta would not
/// shrink a 4-byte-base register).
///
/// `any_bits` detects exact-zero deltas; `magnitude` folds the
/// sign-folded pattern `d ^ (d >> 31)` (= `d` for `d >= 0`, `!d` for
/// `d < 0`), which is `< 2^(8w−1)` exactly when `d` fits a `w`-byte
/// signed delta.
pub(crate) fn width4_of_fold(any_bits: u32, magnitude: u32) -> Option<usize> {
    if any_bits == 0 {
        Some(0)
    } else if magnitude < 0x80 {
        Some(1)
    } else if magnitude < 0x8000 {
        Some(2)
    } else {
        None
    }
}

/// [`width4_of_fold`] for 8-byte chunks, where a 4-byte delta *is*
/// narrower than the base and therefore a valid width.
pub(crate) fn width8_of_fold(any_bits: u64, magnitude: u64) -> Option<usize> {
    if any_bits == 0 {
        Some(0)
    } else if magnitude < 0x80 {
        Some(1)
    } else if magnitude < 0x8000 {
        Some(2)
    } else if magnitude < 0x8000_0000 {
        Some(4)
    } else {
        None
    }
}

/// Folds one 4-byte delta into the `(any_bits, magnitude)` accumulators.
#[inline(always)]
fn fold4_lane(acc: &mut (u32, u32), lane: u32, base: u32) -> i32 {
    let d = lane.wrapping_sub(base) as i32;
    acc.0 |= d as u32;
    acc.1 |= (d ^ (d >> 31)) as u32;
    d
}

pub(crate) fn fold4(lanes: &[u32; WARP_SIZE]) -> (u32, u32) {
    let base = lanes[0];
    let mut acc = (0u32, 0u32);
    for &lane in &lanes[1..] {
        fold4_lane(&mut acc, lane, base);
    }
    acc
}

pub(crate) fn fold8(lanes: &[u32; WARP_SIZE]) -> (u64, u64) {
    let base = u64::from(lanes[0]) | (u64::from(lanes[1]) << 32);
    let mut bits = 0u64;
    let mut mag = 0u64;
    for pair in 1..WARP_SIZE / 2 {
        let chunk = u64::from(lanes[2 * pair]) | (u64::from(lanes[2 * pair + 1]) << 32);
        let d = chunk.wrapping_sub(base) as i64;
        bits |= d as u64;
        mag |= (d ^ (d >> 63)) as u64;
    }
    (bits, mag)
}

pub(crate) fn sweep4(lanes: &[u32; WARP_SIZE], vals: &mut [i32; MAX_STORED_DELTAS]) -> (u32, u32) {
    let base = lanes[0];
    let mut acc = (0u32, 0u32);
    for (slot, &lane) in vals.iter_mut().zip(&lanes[1..]) {
        *slot = fold4_lane(&mut acc, lane, base);
    }
    acc
}

pub(crate) fn width4_bounded(lanes: &[u32; WARP_SIZE], max_width: usize) -> Option<usize> {
    let base = lanes[0];
    let mut acc = (0u32, 0u32);
    // Fold in 8-lane blocks and bail at the first block that already
    // rules every allowed width out — the accumulators only grow, so an
    // over-budget prefix can never come back under budget.
    for block in lanes[1..].chunks(8) {
        for &lane in block {
            fold4_lane(&mut acc, lane, base);
        }
        let over = match max_width {
            0 => acc.0 != 0,
            1 => acc.1 >= 0x80,
            _ => acc.1 >= 0x8000,
        };
        if over {
            return None;
        }
    }
    width4_of_fold(acc.0, acc.1).filter(|&w| w <= max_width)
}

pub(crate) fn decompress4(base: u32, vals: &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE] {
    let mut out = [0u32; WARP_SIZE];
    out[0] = base;
    for (lane, &d) in out[1..].iter_mut().zip(&vals[..WARP_SIZE - 1]) {
        *lane = base.wrapping_add(d as u32);
    }
    out
}
