//! AVX2 kernels: 8 lanes per `__m256i`, four vector blocks per warp
//! register.
//!
//! # Bit-exactness
//!
//! Every kernel performs the same wrapping-subtract / XOR / OR
//! arithmetic as [`scalar`](super::scalar), just 8 lanes at a time:
//! integer SIMD has no rounding modes, so lane-for-lane results are
//! identical by construction. Lane 0 is folded along with the rest (its
//! delta is `0`, the OR-fold identity), which is what lets the kernels
//! consume the register as four aligned-width loads.
//!
//! # Safety
//!
//! The `#[target_feature(enable = "avx2")]` implementations sit in the
//! dispatch table as raw `unsafe fn` pointers (a safe-wrapper layer
//! would add a second, non-inlinable call per kernel), and the table is
//! only handed out after `is_x86_feature_detected!("avx2")` succeeded
//! (see [`super::select`]/[`super::kernels_for`]). Loads and stores use
//! the unaligned `loadu`/`storeu` forms on pointers derived from
//! in-bounds Rust references, with all offsets bounded by the fixed
//! array sizes.
#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::deltas::MAX_STORED_DELTAS;
use crate::fpc::PREFIX_BITS;
use crate::register::WARP_SIZE;

use super::{scalar, KernelFns, Kernels, SimdTier};

/// The AVX2 kernel table. Only installed after runtime detection.
pub(crate) static KERNELS: Kernels = Kernels::new(
    SimdTier::Avx2,
    KernelFns {
        fold4: fold4_avx2,
        fold8: fold8_avx2,
        sweep4: sweep4_avx2,
        width4_bounded: width4_bounded_avx2,
        decompress4: decompress4_avx2,
        fpc_scan: fpc_scan_avx2,
    },
);

/// OR-reduction of eight 32-bit lanes.
#[target_feature(enable = "avx2")]
unsafe fn or_reduce_u32(v: __m256i) -> u32 {
    let x = _mm_or_si128(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    let x = _mm_or_si128(x, _mm_shuffle_epi32::<0b00_00_11_10>(x));
    let x = _mm_or_si128(x, _mm_shuffle_epi32::<0b00_00_00_01>(x));
    _mm_cvtsi128_si32(x) as u32
}

/// OR-reduction of four 64-bit lanes.
#[target_feature(enable = "avx2")]
unsafe fn or_reduce_u64(v: __m256i) -> u64 {
    let x = _mm_or_si128(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    let x = _mm_or_si128(x, _mm_unpackhi_epi64(x, x));
    _mm_cvtsi128_si64(x) as u64
}

/// Add-reduction of eight 32-bit lanes.
#[target_feature(enable = "avx2")]
unsafe fn add_reduce_u32(v: __m256i) -> u32 {
    let x = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    let x = _mm_add_epi32(x, _mm_shuffle_epi32::<0b00_00_11_10>(x));
    let x = _mm_add_epi32(x, _mm_shuffle_epi32::<0b00_00_00_01>(x));
    _mm_cvtsi128_si32(x) as u32
}

/// `d ^ (d >> 31)` per 32-bit lane — the sign-fold of the scalar sweep.
#[target_feature(enable = "avx2")]
unsafe fn sign_fold_epi32(d: __m256i) -> __m256i {
    _mm256_xor_si256(d, _mm256_srai_epi32::<31>(d))
}

#[target_feature(enable = "avx2")]
unsafe fn fold4_avx2(lanes: &[u32; WARP_SIZE]) -> (u32, u32) {
    let p = lanes.as_ptr() as *const __m256i;
    let base = _mm256_set1_epi32(lanes[0] as i32);
    let mut bits = _mm256_setzero_si256();
    let mut mag = _mm256_setzero_si256();
    for i in 0..WARP_SIZE / 8 {
        let d = _mm256_sub_epi32(_mm256_loadu_si256(p.add(i)), base);
        bits = _mm256_or_si256(bits, d);
        mag = _mm256_or_si256(mag, sign_fold_epi32(d));
    }
    (or_reduce_u32(bits), or_reduce_u32(mag))
}

#[target_feature(enable = "avx2")]
unsafe fn fold8_avx2(lanes: &[u32; WARP_SIZE]) -> (u64, u64) {
    let p = lanes.as_ptr() as *const __m256i;
    let base = _mm256_set1_epi64x((u64::from(lanes[0]) | (u64::from(lanes[1]) << 32)) as i64);
    let zero = _mm256_setzero_si256();
    let mut bits = zero;
    let mut mag = zero;
    for i in 0..WARP_SIZE / 8 {
        let d = _mm256_sub_epi64(_mm256_loadu_si256(p.add(i)), base);
        bits = _mm256_or_si256(bits, d);
        // No 64-bit arithmetic shift in AVX2; `0 > d` builds the same
        // all-ones-when-negative mask as `d >> 63`.
        mag = _mm256_or_si256(mag, _mm256_xor_si256(d, _mm256_cmpgt_epi64(zero, d)));
    }
    (or_reduce_u64(bits), or_reduce_u64(mag))
}

#[target_feature(enable = "avx2")]
unsafe fn sweep4_avx2(lanes: &[u32; WARP_SIZE], vals: &mut [i32; MAX_STORED_DELTAS]) -> (u32, u32) {
    let p = lanes.as_ptr() as *const __m256i;
    let base = _mm256_set1_epi32(lanes[0] as i32);
    let vp = vals.as_mut_ptr();
    // Deltas of lanes 1..32 land in vals[0..31]: the first block is
    // rotated left one lane before storing (its tail slot is then
    // overwritten by the next store), later blocks store at `8i − 1`.
    let rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    let mut bits = _mm256_setzero_si256();
    let mut mag = _mm256_setzero_si256();
    for i in 0..WARP_SIZE / 8 {
        let d = _mm256_sub_epi32(_mm256_loadu_si256(p.add(i)), base);
        if i == 0 {
            _mm256_storeu_si256(vp as *mut __m256i, _mm256_permutevar8x32_epi32(d, rot));
        } else {
            _mm256_storeu_si256(vp.add(8 * i - 1) as *mut __m256i, d);
        }
        bits = _mm256_or_si256(bits, d);
        mag = _mm256_or_si256(mag, sign_fold_epi32(d));
    }
    (or_reduce_u32(bits), or_reduce_u32(mag))
}

#[target_feature(enable = "avx2")]
unsafe fn width4_bounded_avx2(lanes: &[u32; WARP_SIZE], max_width: usize) -> Option<usize> {
    let p = lanes.as_ptr() as *const __m256i;
    let base = _mm256_set1_epi32(lanes[0] as i32);
    // A lane with any bit under the over-budget mask set rules every
    // allowed width out: all bits for width 0, `>= 0x80` after the
    // sign-fold for width 1, `>= 0x8000` for width 2.
    let over_mask = _mm256_set1_epi32(match max_width {
        0 => -1i32,
        1 => !0x7F,
        _ => !0x7FFF,
    });
    let mut bits = _mm256_setzero_si256();
    let mut mag = _mm256_setzero_si256();
    for i in 0..WARP_SIZE / 8 {
        let d = _mm256_sub_epi32(_mm256_loadu_si256(p.add(i)), base);
        bits = _mm256_or_si256(bits, d);
        mag = _mm256_or_si256(mag, sign_fold_epi32(d));
        let probe = if max_width == 0 { bits } else { mag };
        if _mm256_testz_si256(probe, over_mask) == 0 {
            return None;
        }
    }
    scalar::width4_of_fold(or_reduce_u32(bits), or_reduce_u32(mag)).filter(|&w| w <= max_width)
}

#[target_feature(enable = "avx2")]
unsafe fn decompress4_avx2(base: u32, vals: &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE] {
    let mut out = [0u32; WARP_SIZE];
    let b = _mm256_set1_epi32(base as i32);
    let vp = vals.as_ptr();
    let op = out.as_mut_ptr();
    // 31 deltas: three 8-wide blocks into out[1..25], one 4-wide block
    // into out[25..29], scalar tail. Disjoint stores only — an
    // overlapping final vector store makes LLVM spill the whole block
    // through the stack, which costs more than the three tail adds.
    for i in 0..3 {
        let d = _mm256_loadu_si256(vp.add(8 * i) as *const __m256i);
        _mm256_storeu_si256(op.add(8 * i + 1) as *mut __m256i, _mm256_add_epi32(b, d));
    }
    let d = _mm_loadu_si128(vp.add(24) as *const __m128i);
    _mm_storeu_si128(
        op.add(25) as *mut __m128i,
        _mm_add_epi32(_mm256_castsi256_si128(b), d),
    );
    out[0] = base;
    for lane in 29..WARP_SIZE {
        out[lane] = base.wrapping_add(vals[lane - 1] as u32);
    }
    out
}

#[target_feature(enable = "avx2")]
unsafe fn fpc_scan_avx2(words: &[u32; WARP_SIZE]) -> (u32, u32) {
    let p = words.as_ptr() as *const __m256i;
    let zero = _mm256_setzero_si256();
    // Rotate each 32-bit word's bytes left by one (per 128-bit lane
    // indices): a word equals its rotation iff all four bytes match.
    let rot8 = _mm256_setr_epi8(
        1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12, //
        1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12,
    );
    // `v` fits a signed k-bit value iff `(v + 2^(k-1)) & !(2^k - 1)` is
    // zero — the vector form of the scalar `fits_se` check.
    let fits_se = |v: __m256i, bias: i32, keep: i32| {
        _mm256_cmpeq_epi32(
            _mm256_and_si256(
                _mm256_add_epi32(v, _mm256_set1_epi32(bias)),
                _mm256_set1_epi32(keep),
            ),
            zero,
        )
    };
    let mut total = zero;
    let mut zmask = 0u32;
    for i in 0..WARP_SIZE / 8 {
        let v = _mm256_loadu_si256(p.add(i));
        let is_zero = _mm256_cmpeq_epi32(v, zero);
        zmask |= (_mm256_movemask_ps(_mm256_castsi256_ps(is_zero)) as u32) << (8 * i);
        let se4 = fits_se(v, 0x8, !0xF);
        let se8 = fits_se(v, 0x80, !0xFF);
        let se16 = fits_se(v, 0x8000, !0xFFFF);
        let padded = _mm256_cmpeq_epi32(
            _mm256_and_si256(v, _mm256_set1_epi32(0xFFFF_0000u32 as i32)),
            zero,
        );
        // Both 16-bit halves fit signed 8 bits: the same biased-mask
        // check in 16-bit lanes, then both halves of a word must pass.
        let halves = _mm256_cmpeq_epi16(
            _mm256_and_si256(
                _mm256_add_epi16(v, _mm256_set1_epi16(0x80)),
                _mm256_set1_epi16(0xFF00u16 as i16),
            ),
            zero,
        );
        let two = _mm256_cmpeq_epi32(halves, _mm256_set1_epi32(-1));
        let rep = _mm256_cmpeq_epi32(v, _mm256_shuffle_epi8(v, rot8));
        // Payload bits, applied in reverse priority so the first
        // matching pattern of the scalar classifier wins.
        let mut cost = _mm256_set1_epi32(32);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(8), rep);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(16), two);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(16), padded);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(16), se16);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(8), se8);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(4), se4);
        cost = _mm256_add_epi32(cost, _mm256_set1_epi32(PREFIX_BITS as i32));
        total = _mm256_add_epi32(total, _mm256_andnot_si256(is_zero, cost));
    }
    (add_reduce_u32(total), zmask)
}
