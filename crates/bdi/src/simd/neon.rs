//! NEON kernels: 4 lanes per `uint32x4_t`, eight vector blocks per warp
//! register.
//!
//! Mirrors [`scalar`](super::scalar) lane for lane — integer NEON has no
//! rounding modes, so the wrapping-subtract / XOR / OR arithmetic is
//! bit-identical by construction. Lane 0 folds along with the rest (its
//! delta is `0`, the OR identity).
//!
//! # Safety
//!
//! The `#[target_feature(enable = "neon")]` implementations sit in the
//! dispatch table as raw `unsafe fn` pointers (a safe-wrapper layer
//! would add a second, non-inlinable call per kernel), and the table is
//! only handed out after `is_aarch64_feature_detected!("neon")`
//! succeeded (see [`super::select`]/[`super::kernels_for`]). All
//! loads/stores go through pointers derived from in-bounds Rust
//! references with offsets bounded by the fixed array sizes.
#![allow(unsafe_code)]

use core::arch::aarch64::*;

use crate::deltas::MAX_STORED_DELTAS;
use crate::fpc::PREFIX_BITS;
use crate::register::WARP_SIZE;

use super::{scalar, KernelFns, Kernels, SimdTier};

/// The NEON kernel table. Only installed after runtime detection.
pub(crate) static KERNELS: Kernels = Kernels::new(
    SimdTier::Neon,
    KernelFns {
        fold4: fold4_neon,
        fold8: fold8_neon,
        sweep4: sweep4_neon,
        width4_bounded: width4_bounded_neon,
        decompress4: decompress4_neon,
        fpc_scan: fpc_scan_neon,
    },
);

/// `d ^ (d >> 31)` per 32-bit lane — the sign-fold of the scalar sweep.
#[target_feature(enable = "neon")]
unsafe fn sign_fold_s32(d: int32x4_t) -> uint32x4_t {
    vreinterpretq_u32_s32(veorq_s32(d, vshrq_n_s32::<31>(d)))
}

#[target_feature(enable = "neon")]
unsafe fn fold4_neon(lanes: &[u32; WARP_SIZE]) -> (u32, u32) {
    let p = lanes.as_ptr();
    let base = vdupq_n_u32(lanes[0]);
    let mut bits = vdupq_n_u32(0);
    let mut mag = vdupq_n_u32(0);
    for i in 0..WARP_SIZE / 4 {
        let d = vsubq_u32(vld1q_u32(p.add(4 * i)), base);
        bits = vorrq_u32(bits, d);
        mag = vorrq_u32(mag, sign_fold_s32(vreinterpretq_s32_u32(d)));
    }
    (vorr_fold(bits), vorr_fold(mag))
}

/// OR-reduction of four 32-bit lanes.
#[target_feature(enable = "neon")]
unsafe fn vorr_fold(v: uint32x4_t) -> u32 {
    let x = vorr_u32(vget_low_u32(v), vget_high_u32(v));
    let x = vorr_u32(x, vext_u32::<1>(x, x));
    vget_lane_u32::<0>(x)
}

/// OR-reduction of two 64-bit lanes.
#[target_feature(enable = "neon")]
unsafe fn vorr_fold64(v: uint64x2_t) -> u64 {
    vgetq_lane_u64::<0>(v) | vgetq_lane_u64::<1>(v)
}

#[target_feature(enable = "neon")]
unsafe fn fold8_neon(lanes: &[u32; WARP_SIZE]) -> (u64, u64) {
    let p = lanes.as_ptr() as *const u64;
    let base = vdupq_n_u64(u64::from(lanes[0]) | (u64::from(lanes[1]) << 32));
    let mut bits = vdupq_n_u64(0);
    let mut mag = vdupq_n_u64(0);
    for i in 0..WARP_SIZE / 4 {
        let d = vsubq_u64(vld1q_u64(p.add(2 * i)), base);
        bits = vorrq_u64(bits, d);
        let s = vreinterpretq_s64_u64(d);
        mag = vorrq_u64(
            mag,
            vreinterpretq_u64_s64(veorq_s64(s, vshrq_n_s64::<63>(s))),
        );
    }
    (vorr_fold64(bits), vorr_fold64(mag))
}

#[target_feature(enable = "neon")]
unsafe fn sweep4_neon(lanes: &[u32; WARP_SIZE], vals: &mut [i32; MAX_STORED_DELTAS]) -> (u32, u32) {
    let p = lanes.as_ptr();
    let base = vdupq_n_u32(lanes[0]);
    let vp = vals.as_mut_ptr();
    let mut bits = vdupq_n_u32(0);
    let mut mag = vdupq_n_u32(0);
    for i in 0..WARP_SIZE / 4 {
        let d = vsubq_u32(vld1q_u32(p.add(4 * i)), base);
        let sd = vreinterpretq_s32_u32(d);
        if i == 0 {
            // Lane 0's delta is not stored; extract lanes 1..4.
            *vp = vgetq_lane_s32::<1>(sd);
            *vp.add(1) = vgetq_lane_s32::<2>(sd);
            *vp.add(2) = vgetq_lane_s32::<3>(sd);
        } else {
            vst1q_s32(vp.add(4 * i - 1), sd);
        }
        bits = vorrq_u32(bits, d);
        mag = vorrq_u32(mag, sign_fold_s32(sd));
    }
    (vorr_fold(bits), vorr_fold(mag))
}

#[target_feature(enable = "neon")]
unsafe fn width4_bounded_neon(lanes: &[u32; WARP_SIZE], max_width: usize) -> Option<usize> {
    let p = lanes.as_ptr();
    let base = vdupq_n_u32(lanes[0]);
    // A lane with any bit under the over-budget mask set rules every
    // allowed width out (see the scalar kernel).
    let over_mask = vdupq_n_u32(match max_width {
        0 => !0u32,
        1 => !0x7F,
        _ => !0x7FFF,
    });
    let mut bits = vdupq_n_u32(0);
    let mut mag = vdupq_n_u32(0);
    for i in 0..WARP_SIZE / 4 {
        let d = vsubq_u32(vld1q_u32(p.add(4 * i)), base);
        bits = vorrq_u32(bits, d);
        mag = vorrq_u32(mag, sign_fold_s32(vreinterpretq_s32_u32(d)));
        // Check every other block (8 lanes), matching the scalar
        // early-exit granularity.
        if i % 2 == 1 {
            let probe = if max_width == 0 { bits } else { mag };
            if vmaxvq_u32(vandq_u32(probe, over_mask)) != 0 {
                return None;
            }
        }
    }
    scalar::width4_of_fold(vorr_fold(bits), vorr_fold(mag)).filter(|&w| w <= max_width)
}

#[target_feature(enable = "neon")]
unsafe fn decompress4_neon(base: u32, vals: &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE] {
    let mut out = [0u32; WARP_SIZE];
    let b = vdupq_n_u32(base);
    let vp = vals.as_ptr();
    let op = out.as_mut_ptr();
    // 31 deltas: seven 4-wide blocks into out[1..29], scalar tail.
    // Disjoint stores only — an overlapping final vector store makes
    // LLVM spill the block through the stack (see the AVX2 kernel).
    for i in 0..7 {
        let d = vreinterpretq_u32_s32(vld1q_s32(vp.add(4 * i)));
        vst1q_u32(op.add(4 * i + 1), vaddq_u32(b, d));
    }
    out[0] = base;
    for lane in 29..WARP_SIZE {
        out[lane] = base.wrapping_add(vals[lane - 1] as u32);
    }
    out
}

#[target_feature(enable = "neon")]
unsafe fn fpc_scan_neon(words: &[u32; WARP_SIZE]) -> (u32, u32) {
    let p = words.as_ptr();
    let zero = vdupq_n_u32(0);
    // Per-lane bit weights turn a cmpeq mask into a 4-bit group mask.
    let pow2 = {
        let w: [u32; 4] = [1, 2, 4, 8];
        vld1q_u32(w.as_ptr())
    };
    // `v` fits a signed k-bit value iff `(v + 2^(k-1)) & !(2^k - 1) == 0`.
    let fits_se = |v: uint32x4_t, bias: u32, keep: u32| {
        vceqq_u32(
            vandq_u32(vaddq_u32(v, vdupq_n_u32(bias)), vdupq_n_u32(keep)),
            zero,
        )
    };
    let mut total = vdupq_n_u32(0);
    let mut zmask = 0u32;
    for i in 0..WARP_SIZE / 4 {
        let v = vld1q_u32(p.add(4 * i));
        let is_zero = vceqq_u32(v, zero);
        zmask |= vaddvq_u32(vandq_u32(is_zero, pow2)) << (4 * i);
        let se4 = fits_se(v, 0x8, !0xF);
        let se8 = fits_se(v, 0x80, !0xFF);
        let se16 = fits_se(v, 0x8000, !0xFFFF);
        let padded = vceqq_u32(vandq_u32(v, vdupq_n_u32(0xFFFF_0000)), zero);
        // Both 16-bit halves fit signed 8 bits.
        let halves = vceqq_u16(
            vandq_u16(
                vaddq_u16(vreinterpretq_u16_u32(v), vdupq_n_u16(0x80)),
                vdupq_n_u16(0xFF00),
            ),
            vdupq_n_u16(0),
        );
        let two = vceqq_u32(vreinterpretq_u32_u16(halves), vdupq_n_u32(!0));
        // All four bytes equal: the word equals its low byte replicated.
        let rep = vceqq_u32(
            v,
            vmulq_u32(vandq_u32(v, vdupq_n_u32(0xFF)), vdupq_n_u32(0x0101_0101)),
        );
        // Payload bits, applied in reverse priority so the first
        // matching pattern of the scalar classifier wins.
        let mut cost = vdupq_n_u32(32);
        cost = vbslq_u32(rep, vdupq_n_u32(8), cost);
        cost = vbslq_u32(two, vdupq_n_u32(16), cost);
        cost = vbslq_u32(padded, vdupq_n_u32(16), cost);
        cost = vbslq_u32(se16, vdupq_n_u32(16), cost);
        cost = vbslq_u32(se8, vdupq_n_u32(8), cost);
        cost = vbslq_u32(se4, vdupq_n_u32(4), cost);
        cost = vaddq_u32(cost, vdupq_n_u32(PREFIX_BITS as u32));
        total = vaddq_u32(total, vbicq_u32(cost, is_zero));
    }
    (vaddvq_u32(total), zmask)
}
