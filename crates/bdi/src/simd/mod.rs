//! Runtime-dispatched SIMD kernels for the BDI hot paths.
//!
//! The 128-byte warp register is 32 lanes of 4 bytes — exactly the lane
//! vector a host SIMD unit operates on, and the software analogue of the
//! parallel subtractor/comparator array of Fig. 7. This module holds one
//! kernel table per implementation *tier*:
//!
//! * **scalar** — the portable single-pass sweeps every platform gets
//!   ([`scalar`]); also the single source of truth for the width-fold
//!   arithmetic the vector tiers must reproduce bit-exactly.
//! * **avx2** — 8-lane `__m256i` kernels on `x86_64`, selected when
//!   `is_x86_feature_detected!("avx2")` reports support.
//! * **neon** — 4-lane `uint32x4_t` kernels on `aarch64`.
//!
//! Dispatch is resolved **once** per process (a [`OnceLock`]): the first
//! codec call probes the CPU, honours the `WC_FORCE_SCALAR` environment
//! variable (any value other than `0`/empty forces the scalar tier — the
//! escape hatch the scalar-forced CI job uses), and caches a
//! `&'static Kernels` function table. Every tier computes the *same*
//! wrapping-subtract / sign-fold arithmetic over the same lanes, so the
//! compressed bytes, compression classes and bank footprints are
//! bit-identical across tiers — the property-test pins in
//! `tests/simd_dispatch.rs` and the scalar-forced CI job enforce this.

use std::sync::OnceLock;

use crate::deltas::MAX_STORED_DELTAS;
use crate::register::WARP_SIZE;

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;

/// One implementation tier of the BDI kernels.
///
/// All variants exist on every platform so portable code (benches, the
/// dispatch-pinning tests) can enumerate them; [`is_available`] reports
/// whether the current CPU can actually run a tier.
///
/// [`is_available`]: SimdTier::is_available
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Portable single-pass scalar sweeps (always available).
    Scalar,
    /// 256-bit AVX2 kernels (`x86_64` with runtime AVX2 support).
    Avx2,
    /// 128-bit NEON kernels (`aarch64`).
    Neon,
}

impl SimdTier {
    /// Every tier, portable first.
    pub const ALL: [SimdTier; 3] = [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Neon];

    /// Whether this tier can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            SimdTier::Avx2 => avx2_available(),
            SimdTier::Neon => neon_available(),
        }
    }

    /// The tier the runtime dispatcher selected for this process —
    /// the widest available one, unless `WC_FORCE_SCALAR` pinned the
    /// scalar tier.
    pub fn active() -> SimdTier {
        kernels().tier
    }

    /// Stable lower-case label, used in reports, benches and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

#[cfg(target_arch = "aarch64")]
fn neon_available() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

#[cfg(not(target_arch = "aarch64"))]
fn neon_available() -> bool {
    false
}

/// The kernel function table one tier exports.
///
/// Every entry must be bit-exact against the scalar tier: same folds,
/// same deltas, same early-exit decisions. The vector tiers fold lane 0
/// into the accumulators too (its delta is definitionally zero, which is
/// the OR-fold identity), so "all 32 lanes" and "lanes 1.." describe the
/// same arithmetic.
///
/// Entries are `unsafe fn` pointers targeting the `#[target_feature]`
/// implementations *directly* — a safe-wrapper layer would cost a second
/// call per kernel invocation, since target-feature functions cannot
/// inline into feature-less wrappers. Safety is restored at the table
/// granularity: a table is only ever handed out by [`select`] /
/// [`kernels_for`] after its tier's CPU feature was detected, so the
/// safe accessor methods below may call the pointers unconditionally.
#[derive(Debug)]
pub(crate) struct Kernels {
    /// Which tier this table implements.
    pub tier: SimdTier,
    fold4: unsafe fn(&[u32; WARP_SIZE]) -> (u32, u32),
    fold8: unsafe fn(&[u32; WARP_SIZE]) -> (u64, u64),
    sweep4: unsafe fn(&[u32; WARP_SIZE], &mut [i32; MAX_STORED_DELTAS]) -> (u32, u32),
    width4_bounded: unsafe fn(&[u32; WARP_SIZE], usize) -> Option<usize>,
    decompress4: unsafe fn(u32, &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE],
    fpc_scan: unsafe fn(&[u32; WARP_SIZE]) -> (u32, u32),
}

/// The six kernel entry points of one tier, prior to the availability
/// guarantee. Built by the tier modules; wrapped by [`Kernels`].
pub(crate) struct KernelFns {
    pub fold4: unsafe fn(&[u32; WARP_SIZE]) -> (u32, u32),
    pub fold8: unsafe fn(&[u32; WARP_SIZE]) -> (u64, u64),
    pub sweep4: unsafe fn(&[u32; WARP_SIZE], &mut [i32; MAX_STORED_DELTAS]) -> (u32, u32),
    pub width4_bounded: unsafe fn(&[u32; WARP_SIZE], usize) -> Option<usize>,
    pub decompress4: unsafe fn(u32, &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE],
    pub fpc_scan: unsafe fn(&[u32; WARP_SIZE]) -> (u32, u32),
}

impl Kernels {
    /// Builds a tier's table. Callers (the three tier modules) guarantee
    /// the entries are sound to call whenever the tier's
    /// [`is_available`](SimdTier::is_available) holds — the dispatch
    /// functions below enforce that before handing a table out.
    pub(crate) const fn new(tier: SimdTier, fns: KernelFns) -> Self {
        Kernels {
            tier,
            fold4: fns.fold4,
            fold8: fns.fold8,
            sweep4: fns.sweep4,
            width4_bounded: fns.width4_bounded,
            decompress4: fns.decompress4,
            fpc_scan: fns.fpc_scan,
        }
    }
}

// SAFETY (whole impl): every `Kernels` value reachable outside this
// module came from `select`/`kernels`/`kernels_for`, which only return a
// tier after detecting its CPU feature (scalar needs none); the target-
// feature preconditions of the pointed-to kernels therefore hold.
#[allow(unsafe_code)]
impl Kernels {
    /// Width fold vs `lanes[0]`: `(any_bits, magnitude)` — `any_bits`
    /// ORs the raw 4-byte deltas (zero ⇔ ⟨4,0⟩ fits), `magnitude` ORs
    /// the sign-folded pattern `d ^ (d >> 31)` (< 2^(8w−1) ⇔ every
    /// delta fits a `w`-byte signed value).
    pub fn fold4(&self, lanes: &[u32; WARP_SIZE]) -> (u32, u32) {
        unsafe { (self.fold4)(lanes) }
    }

    /// The same fold over 8-byte chunks (lane pairs) vs chunk 0, for
    /// the full-BDI explorer.
    pub fn fold8(&self, lanes: &[u32; WARP_SIZE]) -> (u64, u64) {
        unsafe { (self.fold8)(lanes) }
    }

    /// [`fold4`](Kernels::fold4) that additionally stores the 31
    /// non-base deltas into `vals[0..31]` (slots `31..` are left
    /// untouched), feeding [`DeltaArray`](crate::DeltaArray) directly.
    pub fn sweep4(
        &self,
        lanes: &[u32; WARP_SIZE],
        vals: &mut [i32; MAX_STORED_DELTAS],
    ) -> (u32, u32) {
        unsafe { (self.sweep4)(lanes, vals) }
    }

    /// Early-exit bounded classification: the narrowest delta width
    /// (0/1/2) that fits every lane, or `None` as soon as the fold
    /// proves no width `<= max_width` can fit. The fold accumulators
    /// only grow, so bailing at the first over-budget block is exact.
    pub fn width4_bounded(&self, lanes: &[u32; WARP_SIZE], max_width: usize) -> Option<usize> {
        unsafe { (self.width4_bounded)(lanes, max_width) }
    }

    /// 4-byte-base decompression: `out[0] = base`,
    /// `out[i+1] = base + vals[i]` (wrapping), one add per lane.
    pub fn decompress4(&self, base: u32, vals: &[i32; MAX_STORED_DELTAS]) -> [u32; WARP_SIZE] {
        unsafe { (self.decompress4)(base, vals) }
    }

    /// FPC scan: total encoded bits of the non-zero words (prefix +
    /// payload each) and the bitmask of zero words (bit *i* ⇔ word *i*
    /// is zero), from which the zero-run cost is computed scalar-side.
    pub fn fpc_scan(&self, words: &[u32; WARP_SIZE]) -> (u32, u32) {
        unsafe { (self.fpc_scan)(words) }
    }
}

/// Whether `WC_FORCE_SCALAR` requests the scalar tier. Read once per
/// process when the dispatch table is first resolved.
fn force_scalar_env() -> bool {
    std::env::var_os("WC_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Selects the kernel table: scalar when forced, otherwise the widest
/// tier the CPU supports.
fn select(force_scalar: bool) -> &'static Kernels {
    if force_scalar {
        return &scalar::KERNELS;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return &avx2::KERNELS;
    }
    #[cfg(target_arch = "aarch64")]
    if neon_available() {
        return &neon::KERNELS;
    }
    &scalar::KERNELS
}

/// The process-wide dispatched kernel table (detected once, cached).
pub(crate) fn kernels() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| select(force_scalar_env()))
}

/// The kernel table for a specific tier, or `None` when the current CPU
/// cannot run it. Benches and the dispatch-pinning tests use this to
/// exercise every tier in-process.
pub(crate) fn kernels_for(tier: SimdTier) -> Option<&'static Kernels> {
    if !tier.is_available() {
        return None;
    }
    match tier {
        SimdTier::Scalar => Some(&scalar::KERNELS),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => Some(&avx2::KERNELS),
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => Some(&neon::KERNELS),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::WarpRegister;
    use proptest::prelude::*;

    /// Every tier the current CPU can actually run.
    fn available_tiers() -> Vec<&'static Kernels> {
        SimdTier::ALL
            .iter()
            .filter_map(|&t| kernels_for(t))
            .collect()
    }

    #[test]
    fn forcing_scalar_selects_the_scalar_tier() {
        assert_eq!(select(true).tier, SimdTier::Scalar);
    }

    #[test]
    fn unforced_selection_matches_cpu_detection() {
        let expected = if avx2_available() {
            SimdTier::Avx2
        } else if neon_available() {
            SimdTier::Neon
        } else {
            SimdTier::Scalar
        };
        assert_eq!(select(false).tier, expected);
    }

    #[test]
    fn active_tier_honours_the_environment() {
        // The process-wide cache resolves from the real environment, so
        // this is the in-process mirror of the scalar-forced CI job.
        assert_eq!(SimdTier::active(), select(force_scalar_env()).tier);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdTier::Scalar.is_available());
        assert!(kernels_for(SimdTier::Scalar).is_some());
        for tier in SimdTier::ALL {
            assert_eq!(kernels_for(tier).is_some(), tier.is_available());
            if let Some(k) = kernels_for(tier) {
                assert_eq!(k.tier, tier);
            }
        }
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Neon.to_string(), "neon");
    }

    /// Exhaustive-ish corner patterns: every fold boundary the width
    /// classification can sit on, plus wraparound and mixed-width data.
    fn corner_registers() -> Vec<WarpRegister> {
        let mut regs = vec![
            WarpRegister::ZERO,
            WarpRegister::splat(u32::MAX),
            WarpRegister::splat(0xABCD),
            WarpRegister::from_fn(|t| t as u32),
            WarpRegister::from_fn(|t| 5000 + t as u32),
            WarpRegister::from_fn(|t| 1000 * t as u32),
            WarpRegister::from_fn(|t| u32::MAX.wrapping_add(t as u32)),
            WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9)),
            WarpRegister::from_fn(|t| if t % 2 == 0 { 0 } else { 0x7000_0000 }),
        ];
        for (lane, value) in [
            (1, 127u32),
            (1, 128),
            (31, 127),
            (31, 128),
            (7, 0x7FFF),
            (7, 0x8000),
            (30, (-128i32) as u32),
            (30, (-129i32) as u32),
            (1, 0x8000_0000),
        ] {
            let mut reg = WarpRegister::splat(0);
            reg.set_lane(lane, value);
            regs.push(reg);
        }
        regs
    }

    fn assert_tiers_agree(reg: &WarpRegister) {
        let scalar = &scalar::KERNELS;
        let mut scalar_vals = [0i32; MAX_STORED_DELTAS];
        let scalar_sweep = scalar.sweep4(reg.as_lanes(), &mut scalar_vals);
        for k in available_tiers() {
            assert_eq!(k.fold4(reg.as_lanes()), scalar.fold4(reg.as_lanes()));
            assert_eq!(k.fold8(reg.as_lanes()), scalar.fold8(reg.as_lanes()));
            let mut vals = [0i32; MAX_STORED_DELTAS];
            assert_eq!(k.sweep4(reg.as_lanes(), &mut vals), scalar_sweep);
            assert_eq!(vals, scalar_vals, "{:?} deltas", k.tier);
            for width in 0..=2 {
                assert_eq!(
                    k.width4_bounded(reg.as_lanes(), width),
                    scalar.width4_bounded(reg.as_lanes(), width),
                    "{:?} width4_bounded({width})",
                    k.tier
                );
            }
            assert_eq!(
                k.decompress4(reg.lane(0), &scalar_vals),
                scalar.decompress4(reg.lane(0), &scalar_vals)
            );
            assert_eq!(
                k.fpc_scan(reg.as_lanes()),
                scalar.fpc_scan(reg.as_lanes()),
                "{:?} fpc_scan",
                k.tier
            );
        }
    }

    #[test]
    fn all_tiers_agree_on_corner_patterns() {
        for reg in corner_registers() {
            assert_tiers_agree(&reg);
        }
    }

    proptest! {
        /// Every available tier reproduces the scalar kernels bit-exactly
        /// on uniformly random registers.
        #[test]
        fn all_tiers_agree_on_random_registers(lanes in prop::array::uniform32(any::<u32>())) {
            assert_tiers_agree(&WarpRegister::new(lanes));
        }

        /// ... and on the similarity-biased distribution that actually
        /// lands in the compressed classes (mixed widths, sign
        /// boundaries).
        #[test]
        fn all_tiers_agree_on_similar_registers(
            base in any::<u32>(),
            stride in -300i64..300,
            jitter in prop::array::uniform32(-4i64..4),
        ) {
            let reg = WarpRegister::from_fn(|t| {
                (base as i64 + stride * t as i64 + jitter[t % WARP_SIZE]) as u32
            });
            assert_tiers_agree(&reg);
        }
    }
}
