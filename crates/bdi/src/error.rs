//! Error types.

use std::error::Error;
use std::fmt;

/// An invalid ⟨base, delta⟩ combination was requested.
///
/// Returned by [`ChunkLayout::new`](crate::ChunkLayout::new) when the delta
/// width is not narrower than the base or is not a supported width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutError {
    /// The requested base width in bytes.
    pub base_bytes: usize,
    /// The requested delta width in bytes.
    pub delta_bytes: usize,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid BDI layout <{},{}>: delta must be one of 0/1/2/4 bytes and narrower than the base",
            self.base_bytes, self.delta_bytes
        )
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LayoutError {
            base_bytes: 4,
            delta_bytes: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("<4,4>"));
        assert!(msg.contains("narrower"));
    }
}
