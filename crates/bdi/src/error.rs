//! Error types.

use std::error::Error;
use std::fmt;

/// An invalid ⟨base, delta⟩ combination was requested.
///
/// Returned by [`ChunkLayout::new`](crate::ChunkLayout::new) when the delta
/// width is not narrower than the base or is not a supported width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutError {
    /// The requested base width in bytes.
    pub base_bytes: usize,
    /// The requested delta width in bytes.
    pub delta_bytes: usize,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid BDI layout <{},{}>: delta must be one of 0/1/2/4 bytes and narrower than the base",
            self.base_bytes, self.delta_bytes
        )
    }
}

impl Error for LayoutError {}

/// A stored compressed register failed structural validation on decode.
///
/// A well-formed [`CompressedRegister`](crate::CompressedRegister) can
/// never produce these — they arise when the stored bits have been
/// corrupted (e.g. by an injected fault) or when a byte image is parsed
/// under the wrong layout. Decoding surfaces them as `Err` instead of
/// panicking so a simulator can treat corruption as a *detected* fault
/// rather than a process abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The delta count does not match the layout's chunk count − 1.
    DeltaCountMismatch {
        /// Deltas the layout requires (chunk count − 1).
        expected: usize,
        /// Deltas actually present.
        got: usize,
    },
    /// A byte image is shorter than the layout's stored form.
    TruncatedPayload {
        /// Bytes the layout's stored form occupies.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The 2-bit indicator named a layout this decoder cannot parse.
    UnsupportedLayout {
        /// Base width in bytes of the offending layout.
        base_bytes: usize,
        /// Delta width in bytes of the offending layout.
        delta_bytes: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DeltaCountMismatch { expected, got } => write!(
                f,
                "corrupt compressed register: layout requires {expected} deltas, found {got}"
            ),
            DecodeError::TruncatedPayload { needed, got } => write!(
                f,
                "corrupt compressed register: stored form needs {needed} bytes, only {got} available"
            ),
            DecodeError::UnsupportedLayout {
                base_bytes,
                delta_bytes,
            } => write!(
                f,
                "cannot decode layout <{base_bytes},{delta_bytes}>: not a runtime choice"
            ),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LayoutError {
            base_bytes: 4,
            delta_bytes: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("<4,4>"));
        assert!(msg.contains("narrower"));
    }

    #[test]
    fn decode_error_display_names_the_failure() {
        let m = DecodeError::DeltaCountMismatch {
            expected: 31,
            got: 30,
        }
        .to_string();
        assert!(m.contains("31") && m.contains("30"));
        let t = DecodeError::TruncatedPayload { needed: 35, got: 4 }.to_string();
        assert!(t.contains("35") && t.contains("4"));
        let u = DecodeError::UnsupportedLayout {
            base_bytes: 8,
            delta_bytes: 1,
        }
        .to_string();
        assert!(u.contains("<8,1>"));
    }
}
