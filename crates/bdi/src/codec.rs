//! The compression/decompression engine (paper Fig. 7).

use std::fmt;

use crate::choice::{ChoiceSet, CompressionClass};
use crate::compressed::CompressedRegister;
use crate::deltas::{DeltaArray, MAX_STORED_DELTAS};
use crate::error::DecodeError;
use crate::layout::{BaseSize, ChunkLayout};
use crate::register::{WarpRegister, WARP_REGISTER_BYTES, WARP_SIZE};
use crate::simd::{kernels, kernels_for, scalar, Kernels, SimdTier};

/// A BDI compressor/decompressor pair configured with a [`ChoiceSet`].
///
/// This models the compressor unit of Fig. 7: the 128-byte warp register is
/// split into chunks, each chunk is subtracted from the base (the first
/// chunk), and sign-extension comparators decide the narrowest delta width
/// that represents every difference. Subtraction wraps at the chunk width,
/// exactly as the hardware subtractor array does.
///
/// # Example
///
/// ```
/// use bdi::{BdiCodec, ChoiceSet, WarpRegister};
///
/// let codec = BdiCodec::default();
/// let uniform = WarpRegister::splat(0xABCD);
/// let c = codec.compress(&uniform);
/// assert_eq!(c.banks_required(), 1); // <4,0>
/// assert_eq!(codec.decompress(&c), uniform);
/// ```
#[derive(Clone)]
pub struct BdiCodec {
    choices: ChoiceSet,
    /// The SIMD kernel table the hot paths run on — resolved once at
    /// construction from the process-wide dispatcher (or pinned by
    /// [`with_tier`](BdiCodec::with_tier)).
    kernels: &'static Kernels,
}

impl BdiCodec {
    /// Creates a codec that tries the given choices in order, running on
    /// the runtime-dispatched kernel tier (AVX2/NEON when the CPU has
    /// them, scalar otherwise or under `WC_FORCE_SCALAR`).
    pub fn new(choices: ChoiceSet) -> Self {
        BdiCodec {
            choices,
            kernels: kernels(),
        }
    }

    /// Creates a codec pinned to a specific kernel tier, or `None` when
    /// the current CPU cannot run it. All tiers are bit-exact, so this
    /// only exists for the dispatch-pinning tests and the scalar-vs-SIMD
    /// benches.
    pub fn with_tier(choices: ChoiceSet, tier: SimdTier) -> Option<Self> {
        kernels_for(tier).map(|kernels| BdiCodec { choices, kernels })
    }

    /// The kernel tier this codec runs on.
    pub fn tier(&self) -> SimdTier {
        self.kernels.tier
    }

    /// The configured choice set.
    pub fn choices(&self) -> &ChoiceSet {
        &self.choices
    }

    /// Compresses a warp register with the first fitting choice, or
    /// returns it uncompressed when no choice fits (or the set is
    /// disabled).
    ///
    /// This is a single sweep over the 32 lanes — the software analog of
    /// the hardware's parallel subtractor/comparator array (Fig. 7),
    /// running 8 lanes per instruction on AVX2 (4 on NEON): every lane is
    /// subtracted from the base exactly once, two bitwise folds classify
    /// the narrowest delta width that fits *all* lanes, and the first
    /// choice at least that wide wins — without re-reading any lane.
    /// Valid because every runtime choice uses a 4-byte base (so all
    /// choices see the same deltas) and delta fit is monotone in width
    /// (the nested-fit property of §4). No heap allocation occurs, and
    /// every kernel tier produces bit-identical output.
    pub fn compress(&self, reg: &WarpRegister) -> CompressedRegister {
        let lanes = reg.as_lanes();
        let mut vals = [0i32; MAX_STORED_DELTAS];
        let (any_bits, magnitude) = self.kernels.sweep4(lanes, &mut vals);
        // `None` means not even 2-byte deltas fit — a 4-byte delta would
        // not shrink a 4-byte-base register.
        let min_width = scalar::width4_of_fold(any_bits, magnitude);
        for choice in self.choices.choices() {
            let layout = choice.layout();
            if min_width.is_some_and(|w| layout.delta_bytes() >= w) {
                let deltas = if layout.delta_bytes() == 0 {
                    DeltaArray::zeros(WARP_SIZE - 1)
                } else {
                    DeltaArray::from_raw(vals, (WARP_SIZE - 1) as u8)
                };
                return CompressedRegister::Compressed {
                    layout,
                    base: u64::from(lanes[0]),
                    deltas,
                };
            }
        }
        CompressedRegister::Uncompressed(*reg)
    }

    /// The compression class `reg` would be stored under, without
    /// keeping the compressed form. Static analyses and the per-write
    /// sim instrumentation use this to ask "how would this value be
    /// stored?" for values they can prove.
    ///
    /// Cheaper than [`compress`](BdiCodec::compress): no deltas are
    /// materialised, and the bounded fold bails out at the first 8-lane
    /// block that already rules out every width the choice set accepts
    /// (e.g. a disabled codec classifies without reading any lane, and
    /// incompressible data is rejected after the first over-budget
    /// block).
    pub fn classify(&self, reg: &WarpRegister) -> CompressionClass {
        let class = match self.choices.max_delta_bytes() {
            None => CompressionClass::Uncompressed,
            Some(max_width) => match self.kernels.width4_bounded(reg.as_lanes(), max_width) {
                None => CompressionClass::Uncompressed,
                Some(w) => self
                    .choices
                    .choices()
                    .iter()
                    .find(|c| c.layout().delta_bytes() >= w)
                    .map(|&c| CompressionClass::from(c))
                    .unwrap_or(CompressionClass::Uncompressed),
            },
        };
        debug_assert_eq!(class, self.compress(reg).class(), "early-exit classify");
        class
    }

    /// The number of 16-byte banks `reg` would occupy as stored —
    /// 1/3/5 for the compressed classes, 8 uncompressed. The static
    /// bank-access bounds are built from exactly this footprint. Shares
    /// the early-exit fold of [`classify`](BdiCodec::classify).
    pub fn footprint(&self, reg: &WarpRegister) -> usize {
        self.classify(reg).banks()
    }

    /// Reference multi-pass compressor: tries each choice independently,
    /// re-reading every chunk per attempt, exactly like the
    /// pre-optimisation implementation.
    ///
    /// Kept as the oracle the property tests and benches compare the
    /// single-pass [`compress`](BdiCodec::compress) against; not intended
    /// for production use.
    pub fn compress_reference(&self, reg: &WarpRegister) -> CompressedRegister {
        for choice in self.choices.choices() {
            if let Some(c) = compress_with_layout(reg, choice.layout()) {
                return c;
            }
        }
        CompressedRegister::Uncompressed(*reg)
    }

    /// Reconstructs the original warp register.
    ///
    /// Decompression is a single wrapping add of each delta to the base
    /// (§4), which is why the paper budgets only one cycle for it — and
    /// why it vectorises into four adds on AVX2.
    pub fn decompress(&self, compressed: &CompressedRegister) -> WarpRegister {
        decompress_with(self.kernels, compressed)
    }

    /// Fallible decompression: validates the stored form first and
    /// surfaces corruption (e.g. from fault injection) as a typed
    /// [`DecodeError`] instead of reconstructing garbage.
    pub fn try_decompress(
        &self,
        compressed: &CompressedRegister,
    ) -> Result<WarpRegister, DecodeError> {
        compressed.validate()?;
        Ok(decompress_with(self.kernels, compressed))
    }
}

impl Default for BdiCodec {
    fn default() -> Self {
        BdiCodec::new(ChoiceSet::default())
    }
}

impl fmt::Debug for BdiCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BdiCodec")
            .field("choices", &self.choices)
            .field("tier", &self.kernels.tier)
            .finish()
    }
}

/// Codecs compare by configuration: choice set and kernel tier. (Manual
/// impl because comparing the function table by pointer would be both
/// meaningless and a clippy `unpredictable_function_pointer_comparisons`
/// hazard.)
impl PartialEq for BdiCodec {
    fn eq(&self, other: &Self) -> bool {
        self.choices == other.choices && self.kernels.tier == other.kernels.tier
    }
}

impl Eq for BdiCodec {}

/// Attempts to compress `reg` with one specific ⟨base, delta⟩ layout.
///
/// Returns `None` when some chunk's wrapping difference from the base does
/// not fit the layout's delta width; the hardware would then fall through
/// to the next choice or store the register uncompressed.
pub(crate) fn compress_with_layout(
    reg: &WarpRegister,
    layout: ChunkLayout,
) -> Option<CompressedRegister> {
    let bytes = reg.to_bytes();
    let chunk_bytes = layout.base().bytes();
    let mut chunks = bytes.chunks_exact(chunk_bytes).map(read_chunk);
    let base = chunks.next().expect("warp register has at least one chunk");
    if layout.delta_bytes() == 0 {
        // Zero-width deltas store no payload; every chunk must equal the
        // base exactly.
        for chunk in chunks {
            if chunk != base {
                return None;
            }
        }
        let deltas = DeltaArray::zeros(layout.chunk_count() - 1);
        return Some(CompressedRegister::Compressed {
            layout,
            base,
            deltas,
        });
    }
    let mut deltas = DeltaArray::new();
    for chunk in chunks {
        let delta = wrapping_delta(chunk, base, layout.base());
        if !layout.delta_fits(delta) {
            return None;
        }
        // Fits a <=4-byte signed delta, so the i32 narrowing is lossless.
        deltas.push(delta as i32);
    }
    Some(CompressedRegister::Compressed {
        layout,
        base,
        deltas,
    })
}

/// Decompresses any [`CompressedRegister`] (free function so callers
/// without a codec, e.g. the decompressor unit model, can use it too).
/// Runs on the process-wide dispatched kernel tier.
pub(crate) fn decompress(compressed: &CompressedRegister) -> WarpRegister {
    decompress_with(kernels(), compressed)
}

/// [`decompress`] on an explicit kernel table.
fn decompress_with(k: &Kernels, compressed: &CompressedRegister) -> WarpRegister {
    match compressed {
        CompressedRegister::Uncompressed(reg) => *reg,
        CompressedRegister::Compressed {
            layout,
            base,
            deltas,
        } => {
            // The three runtime choices all land here: a 4-byte base
            // with the full 31 deltas takes the vector kernel. (The
            // `raw_vals` buffer is valid in both storage forms — the
            // zeros form is all zeros.) Everything else — the explorer's
            // B8/B2/B1 layouts and fault-truncated delta arrays — keeps
            // the generic chunk loop below, preserving its behaviour on
            // malformed registers. The u32 cast of the base matches the
            // generic path's 4-byte chunk mask.
            if layout.base() == BaseSize::B4 && deltas.len() == WARP_SIZE - 1 {
                return WarpRegister::new(k.decompress4(*base as u32, deltas.raw_vals()));
            }
            let chunk_bytes = layout.base().bytes();
            let mut bytes = [0u8; WARP_REGISTER_BYTES];
            write_chunk(&mut bytes[..chunk_bytes], *base);
            for (i, delta) in deltas.iter().enumerate() {
                let chunk = base.wrapping_add(delta as u64) & chunk_mask(layout.base());
                let off = (i + 1) * chunk_bytes;
                write_chunk(&mut bytes[off..off + chunk_bytes], chunk);
            }
            WarpRegister::from_bytes(&bytes)
        }
    }
}

/// Reads a little-endian chunk of 1–8 bytes as a zero-extended u64.
fn read_chunk(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Writes the low `out.len()` bytes of `chunk` little-endian.
fn write_chunk(out: &mut [u8], chunk: u64) {
    let bytes = chunk.to_le_bytes();
    out.copy_from_slice(&bytes[..out.len()]);
}

fn chunk_mask(base: BaseSize) -> u64 {
    match base.bytes() {
        8 => u64::MAX,
        n => (1u64 << (n * 8)) - 1,
    }
}

/// Wrapping subtraction at the chunk width, sign-extended to i64 — what
/// the hardware's fixed-width subtractors compute.
fn wrapping_delta(chunk: u64, base: u64, width: BaseSize) -> i64 {
    let mask = chunk_mask(width);
    let raw = chunk.wrapping_sub(base) & mask;
    let bits = width.bytes() as u32 * 8;
    if bits == 64 {
        raw as i64
    } else {
        // Sign-extend from `bits`.
        let shift = 64 - bits;
        ((raw << shift) as i64) >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{ChoiceSet, FixedChoice};

    fn codec() -> BdiCodec {
        BdiCodec::new(ChoiceSet::warped_compression())
    }

    #[test]
    fn uniform_register_compresses_to_delta0() {
        let c = codec().compress(&WarpRegister::splat(123));
        assert_eq!(c.layout().unwrap().delta_bytes(), 0);
        assert_eq!(c.banks_required(), 1);
    }

    #[test]
    fn classify_and_footprint_match_the_stored_form() {
        let c = codec();
        for reg in [
            WarpRegister::splat(7),
            WarpRegister::from_fn(|t| t as u32),
            WarpRegister::from_fn(|t| 1_000_000 + 1000 * t as u32),
            WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9)),
        ] {
            let stored = c.compress(&reg);
            assert_eq!(c.classify(&reg), stored.class());
            assert_eq!(c.footprint(&reg), stored.banks_required());
        }
        let disabled = BdiCodec::new(ChoiceSet::disabled());
        assert_eq!(disabled.footprint(&WarpRegister::splat(7)), 8);
        assert!(!disabled.classify(&WarpRegister::splat(7)).is_compressed());
    }

    #[test]
    fn tid_register_compresses_to_delta1() {
        let reg = WarpRegister::from_fn(|t| 5000 + t as u32);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 1);
        assert_eq!(codec().decompress(&c), reg);
    }

    #[test]
    fn wide_strides_compress_to_delta2() {
        let reg = WarpRegister::from_fn(|t| 1_000_000 + 1000 * t as u32);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 2);
        assert_eq!(codec().decompress(&c), reg);
    }

    #[test]
    fn random_register_stays_uncompressed() {
        let reg = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9));
        let c = codec().compress(&reg);
        assert!(!c.is_compressed());
        assert_eq!(codec().decompress(&c), reg);
    }

    #[test]
    fn negative_deltas_compress() {
        let reg = WarpRegister::from_fn(|t| 10_000 - 3 * t as u32);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 1);
        assert_eq!(codec().decompress(&c), reg);
    }

    #[test]
    fn wrapping_subtraction_matches_hardware() {
        // base = u32::MAX, others = 0..: the 32-bit wrapping difference is
        // +1, +2, ... so this compresses with a 1-byte delta even though
        // the arithmetic difference is huge.
        let reg = WarpRegister::from_fn(|t| (u32::MAX).wrapping_add(t as u32));
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 1);
        assert_eq!(codec().decompress(&c), reg);
    }

    #[test]
    fn delta_boundary_127_fits_one_byte() {
        let mut reg = WarpRegister::splat(1000);
        reg.set_lane(31, 1127);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 1);
    }

    #[test]
    fn delta_boundary_128_needs_two_bytes() {
        let mut reg = WarpRegister::splat(1000);
        reg.set_lane(31, 1128);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 2);
    }

    #[test]
    fn delta_boundary_minus_128_fits_one_byte() {
        let mut reg = WarpRegister::splat(1000);
        reg.set_lane(31, 1000 - 128);
        let c = codec().compress(&reg);
        assert_eq!(c.layout().unwrap().delta_bytes(), 1);
    }

    #[test]
    fn delta_boundary_32k_needs_uncompressed() {
        let mut reg = WarpRegister::splat(1_000_000);
        reg.set_lane(2, 1_000_000 + 32_768);
        let c = codec().compress(&reg);
        assert!(!c.is_compressed());
    }

    #[test]
    fn base_is_first_lane_not_best_lane() {
        // Only the FIRST chunk is the base (implementation simplicity,
        // §5.1). Lane 0 is the outlier here, so nothing fits.
        let mut reg = WarpRegister::splat(0);
        reg.set_lane(0, 0x4000_0000);
        let c = codec().compress(&reg);
        assert!(!c.is_compressed());
    }

    #[test]
    fn disabled_codec_never_compresses() {
        let codec = BdiCodec::new(ChoiceSet::disabled());
        let c = codec.compress(&WarpRegister::splat(0));
        assert!(!c.is_compressed());
    }

    #[test]
    fn single_choice_delta2_stores_extra_bytes_for_uniform_data() {
        // §6.6: with only <4,2> available, even a perfectly uniform
        // register burns 5 banks.
        let codec = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta2));
        let c = codec.compress(&WarpRegister::splat(7));
        assert_eq!(c.banks_required(), 5);
    }

    #[test]
    fn single_choice_delta0_misses_tid_patterns() {
        let codec = BdiCodec::new(ChoiceSet::only(FixedChoice::Delta0));
        let c = codec.compress(&WarpRegister::from_fn(|t| t as u32));
        assert!(!c.is_compressed());
    }

    #[test]
    fn eight_byte_base_round_trips() {
        let layout = ChunkLayout::new(BaseSize::B8, 2).unwrap();
        // Pairs of registers with similar 64-bit pattern.
        let reg = WarpRegister::from_fn(|t| if t % 2 == 0 { 77 + (t / 2) as u32 } else { 0 });
        let c = compress_with_layout(&reg, layout).expect("should fit 16-bit deltas");
        assert_eq!(decompress(&c), reg);
        assert_eq!(c.banks_required(), 3);
    }

    #[test]
    fn two_byte_base_round_trips() {
        let layout = ChunkLayout::new(BaseSize::B2, 1).unwrap();
        let reg = WarpRegister::from_fn(|_| 0x0005_0004); // 16-bit halves 4,5
        let c = compress_with_layout(&reg, layout).expect("halfword deltas fit");
        assert_eq!(decompress(&c), reg);
        assert_eq!(c.banks_required(), 5);
    }

    #[test]
    fn deltas_length_matches_layout() {
        let reg = WarpRegister::splat(3);
        let c = compress_with_layout(&reg, FixedChoice::Delta1.layout()).unwrap();
        match c {
            CompressedRegister::Compressed { deltas, .. } => assert_eq!(deltas.len(), 31),
            _ => panic!("expected compressed"),
        }
    }

    #[test]
    fn single_pass_matches_reference_on_corner_patterns() {
        // Deliberate width-boundary and wraparound cases; the broad sweep
        // lives in the oracle-equivalence property tests.
        let mut minus_one = WarpRegister::splat(9);
        minus_one.set_lane(7, 8); // delta -1 must NOT classify as width 0
        let mut at_127 = WarpRegister::splat(50);
        at_127.set_lane(3, 177);
        let mut at_128 = WarpRegister::splat(50);
        at_128.set_lane(3, 178);
        let mut at_minus_32768 = WarpRegister::splat(100_000);
        at_minus_32768.set_lane(30, 100_000 - 32_768);
        let mut int_min_delta = WarpRegister::splat(0);
        int_min_delta.set_lane(1, 0x8000_0000); // delta == i32::MIN
        let patterns = [
            WarpRegister::splat(0),
            WarpRegister::splat(u32::MAX),
            WarpRegister::from_fn(|t| t as u32),
            WarpRegister::from_fn(|t| (u32::MAX).wrapping_add(t as u32)),
            WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9)),
            minus_one,
            at_127,
            at_128,
            at_minus_32768,
            int_min_delta,
        ];
        for set in [
            ChoiceSet::warped_compression(),
            ChoiceSet::only(FixedChoice::Delta0),
            ChoiceSet::only(FixedChoice::Delta1),
            ChoiceSet::only(FixedChoice::Delta2),
            ChoiceSet::disabled(),
        ] {
            let codec = BdiCodec::new(set);
            for reg in &patterns {
                assert_eq!(
                    codec.compress(reg),
                    codec.compress_reference(reg),
                    "{reg:?}"
                );
            }
        }
    }
}
