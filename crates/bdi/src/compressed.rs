//! The compressed representation of a warp register.

use serde::{Deserialize, Serialize};

use crate::choice::{CompressionClass, CompressionIndicator};
use crate::deltas::DeltaArray;
use crate::error::DecodeError;
use crate::layout::{ChunkLayout, BANK_BYTES};
use crate::register::{WarpRegister, WARP_REGISTER_BYTES};

/// A warp register after a compression attempt: either left uncompressed
/// (128 bytes, 8 banks) or stored as a BDI ⟨base, delta⟩ form.
///
/// The compressed form holds the base chunk plus one signed delta per
/// remaining chunk; deltas are produced by wrapping subtraction at the
/// chunk width, mirroring the hardware subtractor array of Fig. 7. The
/// deltas live in an inline [`DeltaArray`], so the whole enum is `Copy`
/// and moving a compressed register between pipeline stages never
/// touches the heap — just like the hardware latches it stage to stage.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CompressedRegister {
    /// The register could not (or was chosen not to) be compressed.
    Uncompressed(WarpRegister),
    /// BDI-compressed form.
    Compressed {
        /// The ⟨base, delta⟩ layout used.
        layout: ChunkLayout,
        /// The first chunk, kept verbatim (zero-extended to 64 bits).
        base: u64,
        /// Sign-extended deltas for chunks 1..n, in chunk order.
        deltas: DeltaArray,
    },
}

impl CompressedRegister {
    /// Whether the register is held in compressed form.
    pub fn is_compressed(&self) -> bool {
        matches!(self, CompressedRegister::Compressed { .. })
    }

    /// The layout used, if compressed.
    pub fn layout(&self) -> Option<ChunkLayout> {
        match self {
            CompressedRegister::Uncompressed(_) => None,
            CompressedRegister::Compressed { layout, .. } => Some(*layout),
        }
    }

    /// Size of the stored form in bytes (128 if uncompressed).
    pub fn stored_len(&self) -> usize {
        match self {
            CompressedRegister::Uncompressed(_) => WARP_REGISTER_BYTES,
            CompressedRegister::Compressed { layout, .. } => layout.compressed_len(),
        }
    }

    /// Number of 16-byte register banks the stored form occupies.
    pub fn banks_required(&self) -> usize {
        self.stored_len().div_ceil(BANK_BYTES)
    }

    /// Compression ratio achieved (1.0 when uncompressed).
    pub fn compression_ratio(&self) -> f64 {
        WARP_REGISTER_BYTES as f64 / self.stored_len() as f64
    }

    /// The 2-bit compression-range indicator stored in the bank arbiter
    /// (§4). Only meaningful for the runtime ⟨4,·⟩ choices; the explorer's
    /// 8-byte-base layouts report `Uncompressed` here since the hardware
    /// never stores them.
    pub fn indicator(&self) -> CompressionIndicator {
        match self.layout() {
            None => CompressionIndicator::Uncompressed,
            Some(layout) => CompressionIndicator::from_layout(layout)
                .unwrap_or(CompressionIndicator::Uncompressed),
        }
    }

    /// The compression class of the stored form — the shared taxonomy the
    /// static predictor in `simt-analysis` is validated against. Follows
    /// [`indicator`](Self::indicator): explorer-only 8-byte-base layouts
    /// class as `Uncompressed` since the hardware never stores them.
    pub fn class(&self) -> CompressionClass {
        self.indicator().class()
    }

    /// Structural validity check: the delta count must match the layout's
    /// chunk count − 1.
    ///
    /// Registers produced by [`BdiCodec`](crate::BdiCodec) always pass;
    /// this exists so decode paths can reject corrupted stored forms (as
    /// produced by fault injection) with a typed
    /// [`DecodeError`](crate::DecodeError) instead of silently
    /// reconstructing garbage or panicking.
    pub fn validate(&self) -> Result<(), DecodeError> {
        match self {
            CompressedRegister::Uncompressed(_) => Ok(()),
            CompressedRegister::Compressed { layout, deltas, .. } => {
                let expected = layout.chunk_count() - 1;
                if deltas.len() != expected {
                    return Err(DecodeError::DeltaCountMismatch {
                        expected,
                        got: deltas.len(),
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BaseSize;

    #[test]
    fn uncompressed_occupies_eight_banks() {
        let c = CompressedRegister::Uncompressed(WarpRegister::ZERO);
        assert_eq!(c.banks_required(), 8);
        assert_eq!(c.stored_len(), 128);
        assert!(!c.is_compressed());
        assert_eq!(c.layout(), None);
        assert!((c.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compressed_4_1_occupies_three_banks() {
        let layout = ChunkLayout::new(BaseSize::B4, 1).unwrap();
        let c = CompressedRegister::Compressed {
            layout,
            base: 5,
            deltas: DeltaArray::filled(31, 1),
        };
        assert_eq!(c.banks_required(), 3);
        assert_eq!(c.stored_len(), 35);
        assert!(c.is_compressed());
    }

    #[test]
    fn indicator_of_8_base_layout_falls_back_to_uncompressed() {
        let layout = ChunkLayout::new(BaseSize::B8, 1).unwrap();
        let c = CompressedRegister::Compressed {
            layout,
            base: 0,
            deltas: DeltaArray::filled(15, 0),
        };
        assert_eq!(c.indicator(), CompressionIndicator::Uncompressed);
        assert_eq!(c.class(), CompressionClass::Uncompressed);
    }

    #[test]
    fn class_matches_banks_required_for_runtime_choices() {
        let layout = ChunkLayout::new(BaseSize::B4, 2).unwrap();
        let c = CompressedRegister::Compressed {
            layout,
            base: 7,
            deltas: DeltaArray::filled(31, -3),
        };
        assert_eq!(c.class(), CompressionClass::Delta2);
        assert_eq!(c.class().banks(), c.banks_required());
    }
}
