//! Frequent Pattern Compression (FPC) — a comparison codec.
//!
//! The paper states (§4) that the authors "explored a wide range of
//! compression algorithms to measure the compression ratio and their
//! compression latency" before selecting BDI. This module reproduces
//! that exploration's main contender: FPC (Alameldeen & Wood, the basis
//! of several cache-compression designs), which encodes each 32-bit word
//! with a 3-bit prefix selecting one of eight patterns.
//!
//! FPC often compresses a bit *better* than restricted BDI on
//! similarity-heavy data, but its output is a variable-length bit stream:
//! decompression is inherently serial (each word's position depends on
//! every previous prefix), so it cannot meet the 1-cycle decompression
//! budget of a register file read — which is exactly the argument the
//! paper makes for BDI. The `codec-study` table in `wc-bench` quantifies
//! the ratio side of that trade-off.

use crate::layout::BANK_BYTES;
use crate::register::{WarpRegister, WARP_SIZE};

/// One FPC word pattern (prefix ordering follows the original paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pattern {
    /// A run of zero words (run length encoded in 3 data bits).
    ZeroRun,
    /// Value fits 4 bits sign-extended.
    Se4,
    /// Value fits 8 bits sign-extended.
    Se8,
    /// Value fits 16 bits sign-extended.
    Se16,
    /// Upper halfword zero (16 payload bits).
    PaddedHalf,
    /// Both halfwords fit 8 bits sign-extended each.
    TwoHalves,
    /// All four bytes identical (8 payload bits).
    RepeatedBytes,
    /// Stored verbatim (32 payload bits).
    Uncompressed,
}

impl Pattern {
    fn payload_bits(self) -> usize {
        match self {
            Pattern::ZeroRun => 3,
            Pattern::Se4 => 4,
            Pattern::Se8 | Pattern::RepeatedBytes => 8,
            Pattern::Se16 | Pattern::PaddedHalf | Pattern::TwoHalves => 16,
            Pattern::Uncompressed => 32,
        }
    }
}

pub(crate) const PREFIX_BITS: usize = 3;
const MAX_ZERO_RUN: usize = 8;

fn fits_se(v: u32, bits: u32) -> bool {
    let shift = 32 - bits;
    (((v << shift) as i32) >> shift) as u32 == v
}

/// Whether a 16-bit halfword, *as a signed 16-bit value*, fits 8 bits.
fn half_fits_se8(h: u32) -> bool {
    let v = (h as u16) as i16;
    i8::try_from(v).is_ok()
}

fn classify(word: u32) -> Pattern {
    if fits_se(word, 4) {
        Pattern::Se4
    } else if fits_se(word, 8) {
        Pattern::Se8
    } else if fits_se(word, 16) {
        Pattern::Se16
    } else if word >> 16 == 0 {
        Pattern::PaddedHalf
    } else if half_fits_se8(word >> 16) && half_fits_se8(word & 0xFFFF) {
        Pattern::TwoHalves
    } else {
        let b = word & 0xFF;
        if word == b * 0x0101_0101 {
            Pattern::RepeatedBytes
        } else {
            Pattern::Uncompressed
        }
    }
}

/// Scalar FPC scan kernel: total encoded bits of the non-zero words
/// (prefix + payload each) plus the bitmask of zero words (bit *i* set ⇔
/// word *i* is zero). The word classification is position-independent —
/// only the zero-run encoding couples neighbouring words — so the scan
/// vectorises, and the serial run-length cost is recovered from the mask
/// by [`zero_run_bits`].
pub(crate) fn fpc_scan_scalar(words: &[u32; WARP_SIZE]) -> (u32, u32) {
    let mut bits = 0u32;
    let mut zmask = 0u32;
    for (i, &word) in words.iter().enumerate() {
        if word == 0 {
            zmask |= 1 << i;
        } else {
            bits += (PREFIX_BITS + classify(word).payload_bits()) as u32;
        }
    }
    (bits, zmask)
}

/// Encoded bits of the zero words given their position mask: each
/// maximal run of `L` consecutive zeros costs one ZeroRun encoding per
/// started [`MAX_ZERO_RUN`] words, exactly like the serial scan.
fn zero_run_bits(mut mask: u32) -> usize {
    let mut bits = 0;
    while mask != 0 {
        let start = mask.trailing_zeros();
        let run = (mask >> start).trailing_ones();
        bits +=
            (run as usize).div_ceil(MAX_ZERO_RUN) * (PREFIX_BITS + Pattern::ZeroRun.payload_bits());
        mask &= !(((1u64 << run) - 1) as u32) << start;
    }
    bits
}

/// FPC-compressed size of a word sequence, in bits.
///
/// Full 32-word warp registers take the runtime-dispatched scan kernel
/// (8 words per instruction on AVX2); other lengths fall back to the
/// serial [`compressed_bits_reference`] loop.
pub fn compressed_bits(words: &[u32]) -> usize {
    if let Ok(lanes) = <&[u32; WARP_SIZE]>::try_from(words) {
        let (nonzero_bits, zmask) = crate::simd::kernels().fpc_scan(lanes);
        let total = nonzero_bits as usize + zero_run_bits(zmask);
        debug_assert_eq!(total, compressed_bits_reference(words), "fpc scan oracle");
        return total;
    }
    compressed_bits_reference(words)
}

/// Reference serial FPC sizing: walks the words in order, folding zero
/// runs as it goes — the shape the original FPC hardware pipeline has.
/// Kept as the oracle the property tests (and a `debug_assert` in
/// [`compressed_bits`]) pin the vectorised scan against.
pub fn compressed_bits_reference(words: &[u32]) -> usize {
    let mut bits = 0;
    let mut i = 0;
    while i < words.len() {
        if words[i] == 0 {
            let mut run = 1;
            while run < MAX_ZERO_RUN && i + run < words.len() && words[i + run] == 0 {
                run += 1;
            }
            bits += PREFIX_BITS + Pattern::ZeroRun.payload_bits();
            i += run;
        } else {
            bits += PREFIX_BITS + classify(words[i]).payload_bits();
            i += 1;
        }
    }
    bits
}

/// FPC-compressed size of a warp register, in bytes (rounded up).
pub fn compressed_len(reg: &WarpRegister) -> usize {
    compressed_bits(reg.as_lanes()).div_ceil(8)
}

/// Register banks an FPC-compressed register would occupy, if the banked
/// layout stored the bit stream contiguously.
pub fn banks_required(reg: &WarpRegister) -> usize {
    compressed_len(reg).div_ceil(BANK_BYTES)
}

/// FPC compression ratio of one register.
pub fn compression_ratio(reg: &WarpRegister) -> f64 {
    crate::register::WARP_REGISTER_BYTES as f64 / compressed_len(reg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_collapses_to_runs() {
        // 32 zero words = 4 runs of 8 = 4 × (3+3) bits = 24 bits = 3 B.
        assert_eq!(compressed_bits(&[0u32; 32]), 24);
        assert_eq!(compressed_len(&WarpRegister::ZERO), 3);
        assert_eq!(banks_required(&WarpRegister::ZERO), 1);
    }

    #[test]
    fn word_classification() {
        assert_eq!(classify(7), Pattern::Se4);
        assert_eq!(classify((-8i32) as u32), Pattern::Se4);
        assert_eq!(classify(100), Pattern::Se8);
        assert_eq!(classify((-100i32) as u32), Pattern::Se8);
        assert_eq!(classify(30_000), Pattern::Se16);
        // Halfwords are signed 16-bit values: 0xFFFF is -1, which fits 8
        // bits, so {0x45, -1} is a TwoHalves pattern.
        assert_eq!(classify(0x0045_FFFF), Pattern::TwoHalves);
        assert_eq!(classify(0x0012_0034), Pattern::TwoHalves);
        assert_eq!(classify(0x7777_7777), Pattern::RepeatedBytes);
        assert_eq!(classify(0xDEAD_BEEF), Pattern::Uncompressed);
    }

    #[test]
    fn padded_half_catches_high_halfword_values() {
        // 0x0000_ABCD fits SE16? 0xABCD as i16 is negative, sign-extended
        // would be 0xFFFF_ABCD != value, so SE16 fails and PaddedHalf
        // applies.
        assert_eq!(classify(0x0000_ABCD), Pattern::PaddedHalf);
    }

    #[test]
    fn small_value_register_compresses_hard() {
        let reg = WarpRegister::from_fn(|t| t as u32 % 8);
        // Lane 0 is 0 (zero run of 1), others SE4: ≤ 32 × 7 bits.
        assert!(compressed_len(&reg) <= 28);
        assert!(compression_ratio(&reg) > 4.0);
    }

    #[test]
    fn random_register_barely_compresses() {
        let reg = WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x9E37_79B9) | 0x8000_0000);
        // Essentially every word needs the 35-bit uncompressed encoding,
        // so the "compressed" stream is larger than the raw register.
        assert!(compression_ratio(&reg) < 1.0, "FPC can expand random data");
    }

    #[test]
    fn fpc_beats_bdi_on_mixed_magnitudes() {
        // Half the lanes tiny, half huge: BDI's single base fails (delta
        // too wide) but FPC compresses the tiny half per-word.
        let reg = WarpRegister::from_fn(|t| if t % 2 == 0 { 3 } else { 0xDEAD_BEEF });
        let bdi = crate::BdiCodec::default().compress(&reg).stored_len();
        assert!(
            compressed_len(&reg) < bdi,
            "FPC {} vs BDI {bdi}",
            compressed_len(&reg)
        );
    }

    #[test]
    fn bdi_beats_fpc_on_large_uniform_values() {
        // A large shared base: BDI stores it once; FPC pays 35 bits per
        // word because no per-word pattern matches.
        let reg = WarpRegister::splat(0x1234_5678);
        let bdi = crate::BdiCodec::default().compress(&reg).stored_len();
        assert!(
            bdi < compressed_len(&reg),
            "BDI {bdi} vs FPC {}",
            compressed_len(&reg)
        );
    }
}
