//! Base-Delta-Immediate (BDI) compression for GPU warp registers.
//!
//! This crate implements the compression algorithm of §4 of
//! *Warped-Compression: Enabling Power Efficient GPUs through Register
//! Compression* (ISCA 2015). A GPU warp register is the collection of the
//! 32 per-thread 32-bit values written by one warp instruction — 128 bytes
//! in total. BDI splits those bytes into fixed-size *chunks*, keeps the
//! first chunk as the *base*, and stores every other chunk as a small
//! signed *delta* relative to the base:
//!
//! ```text
//! L_comp = L_base + L_delta * (L_input / L_base - 1)          (paper Eq. 1)
//! ```
//!
//! The paper restricts the runtime scheme to three fixed ⟨base, delta⟩
//! choices — ⟨4,0⟩, ⟨4,1⟩ and ⟨4,2⟩ — selected per register write, because
//! those are the only choices that pay off given the 16-byte register-bank
//! granularity (Table 1). The full parameter space is still available here
//! ([`ChunkLayout`] accepts every Table 1 row) for the design-space
//! exploration that produces the paper's Figure 5.
//!
//! # Example
//!
//! ```
//! use bdi::{WarpRegister, BdiCodec, ChoiceSet};
//!
//! // A register holding `base + tid` for each of the 32 threads: the
//! // classic thread-index pattern the paper identifies as compressible.
//! let reg = WarpRegister::from_fn(|tid| 0x1000 + tid as u32);
//! let codec = BdiCodec::new(ChoiceSet::warped_compression());
//! let compressed = codec.compress(&reg);
//! assert!(compressed.is_compressed());
//! assert_eq!(compressed.banks_required(), 3); // <4,1>: 35 B -> 3 banks
//! assert_eq!(codec.decompress(&compressed), reg);
//! ```

// `deny` rather than `forbid`: the `simd` arch back-ends opt back in
// with `#[allow(unsafe_code)]` for vendor intrinsics behind runtime
// feature detection; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod choice;
mod codec;
mod compressed;
mod deltas;
mod error;
mod explorer;
pub mod fpc;
mod layout;
mod register;
mod simd;

pub use choice::{ChoiceSet, CompressionClass, CompressionIndicator, FixedChoice};
pub use codec::BdiCodec;
pub use compressed::CompressedRegister;
pub use deltas::{DeltaArray, MAX_STORED_DELTAS};
pub use error::{DecodeError, LayoutError};
pub use explorer::{
    explore_best_choice, explore_best_choice_reference, BestChoice, EXPLORER_CHOICES,
};
pub use layout::{table_one, BaseSize, ChunkLayout, TableOneRow, BANK_BYTES, TABLE_ONE};
pub use register::{WarpRegister, WARP_REGISTER_BYTES, WARP_SIZE};
pub use simd::SimdTier;
