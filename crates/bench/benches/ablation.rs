//! Criterion bench: design-choice ablations DESIGN.md calls out.
//!
//! Compares the divergence-handling policies of §5.2 (dummy-MOV vs
//! decompress-merge-recompress) and the single-choice compression sets of
//! §6.6 on a divergence-heavy workload, reporting simulated wall time so
//! regressions in either path show up.

use bdi::FixedChoice;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuSim;
use std::hint::black_box;
use warped_compression::DesignPoint;

fn bench_divergence_policies(c: &mut Criterion) {
    let w = gpu_workloads::by_name("dwt2d").expect("dwt2d exists");
    let mut group = c.benchmark_group("ablation/divergence-policy");
    group.sample_size(10);
    for point in [
        DesignPoint::WarpedCompression,
        DesignPoint::DecompressMergeRecompress,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(point.label()), &w, |b, w| {
            let sim = GpuSim::new(point.config());
            b.iter(|| {
                let mut mem = w.fresh_memory();
                black_box(
                    sim.run(w.kernel(), w.launch(), &mut mem)
                        .expect("runs")
                        .stats
                        .cycles,
                )
            });
        });
    }
    group.finish();
}

fn bench_choice_sets(c: &mut Criterion) {
    let w = gpu_workloads::by_name("hotspot").expect("hotspot exists");
    let mut group = c.benchmark_group("ablation/choice-set");
    group.sample_size(10);
    let points = [
        DesignPoint::Only(FixedChoice::Delta0),
        DesignPoint::Only(FixedChoice::Delta1),
        DesignPoint::Only(FixedChoice::Delta2),
        DesignPoint::WarpedCompression,
    ];
    for point in points {
        group.bench_with_input(BenchmarkId::from_parameter(point.label()), &w, |b, w| {
            let sim = GpuSim::new(point.config());
            b.iter(|| {
                let mut mem = w.fresh_memory();
                black_box(
                    sim.run(w.kernel(), w.launch(), &mut mem)
                        .expect("runs")
                        .stats
                        .cycles,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_divergence_policies, bench_choice_sets);
criterion_main!(benches);
