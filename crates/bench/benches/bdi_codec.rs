//! Criterion bench: raw BDI compressor/decompressor throughput.
//!
//! The paper budgets 2 cycles for compression and 1 for decompression;
//! this bench establishes that the software model is cheap enough for
//! the per-write/per-read instrumentation the simulator performs.

use bdi::{BdiCodec, ChoiceSet, WarpRegister};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn patterns() -> Vec<(&'static str, WarpRegister)> {
    vec![
        ("uniform", WarpRegister::splat(0xABCD)),
        ("tid-affine", WarpRegister::from_fn(|t| 5000 + t as u32)),
        ("wide-stride", WarpRegister::from_fn(|t| 1000 * t as u32)),
        (
            "random",
            WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x9E37_79B9)),
        ),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let codec = BdiCodec::new(ChoiceSet::warped_compression());
    let mut group = c.benchmark_group("bdi/compress");
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(codec.compress(black_box(reg))));
        });
    }
    group.finish();
}

/// The pre-optimisation multi-pass compressor, kept as the baseline the
/// single-pass numbers are compared against.
fn bench_compress_reference(c: &mut Criterion) {
    let codec = BdiCodec::new(ChoiceSet::warped_compression());
    let mut group = c.benchmark_group("bdi/compress-reference");
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(codec.compress_reference(black_box(reg))));
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let codec = BdiCodec::new(ChoiceSet::warped_compression());
    let mut group = c.benchmark_group("bdi/decompress");
    for (name, reg) in patterns() {
        let compressed = codec.compress(&reg);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compressed,
            |b, compressed| {
                b.iter(|| black_box(codec.decompress(black_box(compressed))));
            },
        );
    }
    group.finish();
}

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdi/full-explorer");
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(bdi::explore_best_choice(black_box(reg))));
        });
    }
    group.finish();
}

fn bench_explorer_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdi/full-explorer-reference");
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(bdi::explore_best_choice_reference(black_box(reg))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compress,
    bench_compress_reference,
    bench_decompress,
    bench_explorer,
    bench_explorer_reference,
);
criterion_main!(benches);
