//! Criterion bench: register-file substrate hot paths.
//!
//! Measures the read/write path of the banked register file with and
//! without compression footprints, plus the port-arbitration structure —
//! these dominate simulator cycle cost.

use bdi::{BdiCodec, CompressedRegister, WarpRegister};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_regfile::{BankPorts, RegFileConfig, RegisterFile, WarpSlot};
use std::hint::black_box;

fn bench_write_read(c: &mut Criterion) {
    let codec = BdiCodec::default();
    let compressed = codec.compress(&WarpRegister::splat(7));
    let raw = CompressedRegister::Uncompressed(WarpRegister::from_fn(|t| {
        (t as u32).wrapping_mul(0x9E37_79B9)
    }));

    let mut group = c.benchmark_group("regfile");
    group.bench_function("write-compressed", |b| {
        let mut rf = RegisterFile::new(RegFileConfig {
            wakeup_latency: 0,
            ..RegFileConfig::paper_baseline()
        });
        rf.allocate_warp(WarpSlot(0), 8, 0).unwrap();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(rf.write(WarpSlot(0), 3, compressed, now).unwrap());
        });
    });
    group.bench_function("write-uncompressed", |b| {
        let mut rf = RegisterFile::new(RegFileConfig {
            wakeup_latency: 0,
            ..RegFileConfig::paper_baseline()
        });
        rf.allocate_warp(WarpSlot(0), 8, 0).unwrap();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(rf.write(WarpSlot(0), 3, raw, now).unwrap());
        });
    });
    group.bench_function("read", |b| {
        let mut rf = RegisterFile::new(RegFileConfig::paper_baseline());
        rf.allocate_warp(WarpSlot(0), 8, 0).unwrap();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(rf.read(WarpSlot(0), 3, now).banks_accessed);
        });
    });
    group.bench_function("ports-arbitration", |b| {
        let mut ports = BankPorts::new(32);
        b.iter(|| {
            ports.begin_cycle();
            black_box(ports.try_read(0..8));
            black_box(ports.try_read(8..11));
            black_box(ports.try_write(0..1));
            black_box(ports.try_read(0..1));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_write_read);
criterion_main!(benches);
