//! Criterion bench: simulator throughput, baseline vs warped-compression.
//!
//! Measures the cost of the compression datapath model itself (not GPU
//! performance): how much slower a simulated cycle gets when the
//! compressor/decompressor/gating machinery is active.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuSim;
use std::hint::black_box;
use warped_compression::DesignPoint;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for name in ["lib", "pathfinder", "bfs"] {
        let w = gpu_workloads::by_name(name).expect("workload exists");
        for point in [DesignPoint::Baseline, DesignPoint::WarpedCompression] {
            let id = BenchmarkId::new(point.label(), name);
            group.bench_with_input(id, &w, |b, w| {
                let sim = GpuSim::new(point.config());
                b.iter(|| {
                    let mut mem = w.fresh_memory();
                    let r = sim.run(w.kernel(), w.launch(), &mut mem).expect("runs");
                    black_box(r.stats.cycles)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
