//! Criterion suite: BDI codec throughput, scalar vs the dispatched SIMD
//! tier, in GiB/s of warp-register payload (128 bytes per operation).
//!
//! Four input patterns span the compression classes: `uniform` (⟨4,0⟩),
//! `lane-affine` (⟨4,1⟩, the thread-index pattern), `narrow-range`
//! (⟨4,2⟩ wide strides) and `incompressible` (random lanes, stored
//! uncompressed). Each is measured through `compress`, `decompress` and
//! the early-exit `classify` on every kernel tier the host CPU can run,
//! plus the full-BDI explorer and the FPC scan on the active tier.
//!
//! Run `cargo bench --bench codec`; `CRITERION_FAST=1` (or `--test`)
//! reduces it to a smoke pass. `results/BENCH_simd.json` is recorded
//! separately by the `bench_simd` binary.

use bdi::{BdiCodec, ChoiceSet, SimdTier, WarpRegister, WARP_REGISTER_BYTES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn patterns() -> Vec<(&'static str, WarpRegister)> {
    vec![
        ("uniform", WarpRegister::splat(0xABCD)),
        ("lane-affine", WarpRegister::from_fn(|t| 5000 + t as u32)),
        ("narrow-range", WarpRegister::from_fn(|t| 1000 * t as u32)),
        (
            "incompressible",
            WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x9E37_79B9)),
        ),
    ]
}

/// One codec per tier the host can run (scalar always, AVX2/NEON when
/// detected) — all bit-exact, so the deltas here are pure throughput.
fn tier_codecs() -> Vec<BdiCodec> {
    SimdTier::ALL
        .iter()
        .filter_map(|&tier| BdiCodec::with_tier(ChoiceSet::warped_compression(), tier))
        .collect()
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/compress");
    group.throughput(Throughput::Bytes(WARP_REGISTER_BYTES as u64));
    for codec in tier_codecs() {
        for (name, reg) in patterns() {
            group.bench_with_input(
                BenchmarkId::new(codec.tier().name(), name),
                &reg,
                |b, reg| {
                    b.iter(|| black_box(codec.compress(black_box(reg))));
                },
            );
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/decompress");
    group.throughput(Throughput::Bytes(WARP_REGISTER_BYTES as u64));
    for codec in tier_codecs() {
        for (name, reg) in patterns() {
            let compressed = codec.compress(&reg);
            group.bench_with_input(
                BenchmarkId::new(codec.tier().name(), name),
                &compressed,
                |b, compressed| {
                    b.iter(|| black_box(codec.decompress(black_box(compressed))));
                },
            );
        }
    }
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/classify");
    group.throughput(Throughput::Bytes(WARP_REGISTER_BYTES as u64));
    for codec in tier_codecs() {
        for (name, reg) in patterns() {
            group.bench_with_input(
                BenchmarkId::new(codec.tier().name(), name),
                &reg,
                |b, reg| {
                    b.iter(|| black_box(codec.classify(black_box(reg))));
                },
            );
        }
    }
    group.finish();
}

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/explorer");
    group.throughput(Throughput::Bytes(WARP_REGISTER_BYTES as u64));
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(bdi::explore_best_choice(black_box(reg))));
        });
    }
    group.finish();
}

fn bench_fpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/fpc");
    group.throughput(Throughput::Bytes(WARP_REGISTER_BYTES as u64));
    for (name, reg) in patterns() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            b.iter(|| black_box(bdi::fpc::compressed_bits(black_box(reg.as_lanes()))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compress,
    bench_decompress,
    bench_classify,
    bench_explorer,
    bench_fpc,
);
criterion_main!(benches);
