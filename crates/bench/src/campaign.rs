//! Memoised simulation campaign: one run per (design point, workload).

use std::collections::HashMap;

use gpu_workloads::Workload;
use rayon::prelude::*;
use warped_compression::{run_suite, DesignPoint, RunOutput};

/// Runs and caches suite results per design point, so the ~20 figures
/// share simulations instead of re-running them.
///
/// Keyed directly by [`DesignPoint`] (`Copy + Eq + Hash`), so lookups
/// never allocate a label string.
pub struct Campaign {
    workloads: Vec<Workload>,
    cache: HashMap<DesignPoint, Vec<RunOutput>>,
    /// Seed for seeded experiments (per-kernel fault plans derive from
    /// it). The default, 42, is the documented default of the CLI's
    /// `--seed` flag.
    seed: u64,
}

/// Default campaign seed (the CLI `--seed` default).
pub const DEFAULT_SEED: u64 = 42;

impl Campaign {
    /// A campaign over an explicit workload list (tests use small lists).
    pub fn new(workloads: Vec<Workload>) -> Self {
        assert!(
            !workloads.is_empty(),
            "campaign needs at least one workload"
        );
        Campaign {
            workloads,
            cache: HashMap::new(),
            seed: DEFAULT_SEED,
        }
    }

    /// Returns the campaign with its experiment seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The campaign's experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A campaign over the full 18-benchmark suite.
    pub fn full_suite() -> Self {
        Campaign::new(gpu_workloads::suite())
    }

    /// The benchmark names, in figure order.
    pub fn names(&self) -> Vec<&str> {
        self.workloads.iter().map(|w| w.name()).collect()
    }

    /// The workloads themselves.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Results for one design point, simulating on first use.
    ///
    /// # Panics
    ///
    /// Panics if a simulation fails — the suite workloads are validated
    /// to run cleanly under every design point, so failure is a bug.
    pub fn results(&mut self, point: DesignPoint) -> &[RunOutput] {
        self.cache.entry(point).or_insert_with(|| {
            run_suite(&point.config(), &self.workloads)
                .unwrap_or_else(|e| panic!("design point {} failed: {e}", point.label()))
        })
    }

    /// Simulates every not-yet-cached design point concurrently, so later
    /// [`results`](Self::results) calls are cache hits.
    ///
    /// Design points fan out in parallel and each point's suite fans out
    /// across workloads in turn (a shared thread budget prevents
    /// oversubscription). Simulations are deterministic and results land
    /// in the cache keyed by point, so figure output is byte-identical to
    /// running every point serially. Duplicate entries in `points` are
    /// simulated once.
    ///
    /// # Panics
    ///
    /// Panics if a simulation fails, like [`results`](Self::results).
    pub fn prefetch(&mut self, points: &[DesignPoint]) {
        let mut missing: Vec<DesignPoint> = Vec::new();
        for &p in points {
            if !self.cache.contains_key(&p) && !missing.contains(&p) {
                missing.push(p);
            }
        }
        let runs: Vec<(DesignPoint, Vec<RunOutput>)> = missing
            .par_iter()
            .map(|&p| {
                let runs = run_suite(&p.config(), &self.workloads)
                    .unwrap_or_else(|e| panic!("design point {} failed: {e}", p.label()));
                (p, runs)
            })
            .collect();
        self.cache.extend(runs);
    }

    /// Number of design points simulated so far.
    pub fn points_run(&self) -> usize {
        self.cache.len()
    }

    /// Runs the seeded fault-injection campaign over this campaign's
    /// workloads (warped-compression design point, per-kernel plans
    /// derived from [`seed`](Self::seed)), panic-isolated per kernel.
    #[cfg(feature = "faults")]
    pub fn fault_reports(
        &self,
        protection: gpu_faults::ProtectionModel,
        injections: usize,
        policy: &warped_compression::RunPolicy,
    ) -> Vec<warped_compression::RunRecord<warped_compression::KernelFaultReport>> {
        warped_compression::run_fault_campaign(
            &self.workloads,
            protection,
            injections,
            self.seed,
            policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Campaign {
        Campaign::new(vec![gpu_workloads::by_name("lib").unwrap()])
    }

    #[test]
    fn results_are_memoised() {
        let mut c = tiny();
        let cycles_first = c.results(DesignPoint::WarpedCompression)[0].stats.cycles;
        assert_eq!(c.points_run(), 1);
        let cycles_again = c.results(DesignPoint::WarpedCompression)[0].stats.cycles;
        assert_eq!(c.points_run(), 1, "second call must hit the cache");
        assert_eq!(cycles_first, cycles_again);
    }

    #[test]
    fn prefetch_fills_cache_and_matches_serial_runs() {
        let mut c = tiny();
        // Duplicates collapse; both points land in the cache.
        c.prefetch(&[
            DesignPoint::Baseline,
            DesignPoint::WarpedCompression,
            DesignPoint::Baseline,
        ]);
        assert_eq!(c.points_run(), 2);
        let cycles = c.results(DesignPoint::Baseline)[0].stats.cycles;
        assert_eq!(
            c.points_run(),
            2,
            "results after prefetch must hit the cache"
        );
        // A prefetched run is identical to a lazily-run one.
        let mut serial = tiny();
        assert_eq!(
            serial.results(DesignPoint::Baseline)[0].stats.cycles,
            cycles
        );
    }

    #[test]
    fn names_match_workloads() {
        let c = tiny();
        assert_eq!(c.names(), vec!["lib"]);
        assert_eq!(c.workloads().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_campaign_rejected() {
        let _ = Campaign::new(Vec::new());
    }
}
