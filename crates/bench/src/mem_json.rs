//! Deterministic JSON rendering of static-memory-vs-traced reports
//! (`wcsim mem`), on the shared [`jsonfmt`](crate::jsonfmt) builder.
//!
//! `results/BENCH_mem.json` is the CI artifact of the memory-analysis
//! soundness gate: per kernel, the cross-warp race verdict joined
//! against the traced conflicts, every load/store site's abstract
//! containment and transaction-floor checks, and the static issue
//! scheduler's attribution (closed statically, or the named bail
//! reason and pc).

use warped_compression::{MemReport, SiteCheck, TracedConflict};

use crate::jsonfmt::{block_list, inline, opt_display, quoted, JsonObject};

fn site_json(s: &SiteCheck) -> String {
    format!(
        "      {}",
        inline(&[
            ("pc", s.pc.to_string()),
            ("kind", quoted(if s.is_store { "store" } else { "load" })),
            ("pattern", quoted(&s.pattern)),
            ("divergent", s.divergent.to_string()),
            ("accesses", s.accesses.to_string()),
            ("transactions", s.transactions.to_string()),
            ("escapes", s.escapes.to_string()),
            ("min_transactions", s.min_transactions.to_string()),
            ("min_executions", s.min_executions.to_string()),
            ("floor_holds", s.floor_holds().to_string()),
        ])
    )
}

fn conflict_json(c: &TracedConflict) -> String {
    format!(
        "      {}",
        inline(&[
            ("store_pc", c.store_pc.to_string()),
            ("other_pc", c.other_pc.to_string()),
            ("other_is_store", c.other_is_store.to_string()),
            ("predicted", c.predicted.to_string()),
        ])
    )
}

/// One kernel's static-memory-vs-traced fragment.
pub fn mem_record_json(r: &MemReport) -> String {
    let sites: Vec<String> = r.sites.iter().map(site_json).collect();
    let conflicts: Vec<String> = r.traced_conflicts.iter().map(conflict_json).collect();
    JsonObject::new(4)
        .string("kernel", &r.kernel)
        .display("sound", r.is_sound())
        .field("race_free", opt_display(r.race_free))
        .display("static_races", r.static_races)
        .display("traced_conflicts", r.traced_conflicts.len())
        .display("missed_conflicts", r.missed_conflicts().len())
        .display("escapes", r.escape_count())
        .display("untracked_accesses", r.untracked_accesses)
        .display("refined_loads", r.refined_loads)
        .display("refined_value_escapes", r.refined_value_escapes)
        .string(
            "schedule_mode",
            if r.schedule.static_mode {
                "static"
            } else {
                "dynamic-fallback"
            },
        )
        .field(
            "schedule_bail",
            r.schedule
                .bail
                .as_deref()
                .map_or_else(|| "null".into(), quoted),
        )
        .field("schedule_bail_pc", opt_display(r.schedule.bail_pc))
        .display("forwardable_loads", r.schedule.forwardable_loads)
        .field("sites", block_list(4, &sites))
        .field("conflicts", block_list(4, &conflicts))
        .render_fragment()
}

/// The whole `BENCH_mem.json` document.
pub fn mem_json(reports: &[MemReport]) -> String {
    let fragments: Vec<String> = reports.iter().map(mem_record_json).collect();
    let race_free = reports.iter().filter(|r| r.race_free == Some(true)).count();
    let static_kernels = reports.iter().filter(|r| r.schedule.static_mode).count();
    let refined: usize = reports.iter().map(|r| r.refined_loads).sum();
    JsonObject::new(0)
        .display("sound", reports.iter().all(MemReport::is_sound))
        .display("race_free_kernels", race_free)
        .display("static_kernels", static_kernels)
        .display("fallback_kernels", reports.len() - static_kernels)
        .display("refined_loads", refined)
        .field("kernels", block_list(2, &fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::mem_workload;

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let render = || {
            let lib = gpu_workloads::by_name("lib").unwrap();
            let bfs = gpu_workloads::by_name("bfs").unwrap();
            let rs = [mem_workload(&lib).unwrap(), mem_workload(&bfs).unwrap()];
            mem_json(&rs)
        };
        let a = render();
        assert_eq!(a, render(), "mem JSON must be byte-identical");
        assert!(a.contains("\"sound\": true"));
        assert!(a.contains("\"race_free\": "));
        assert!(a.contains("\"pattern\": "));
        assert!(a.contains("\"schedule_mode\": "));
        assert!(a.contains("\"floor_holds\": true"));
    }
}
