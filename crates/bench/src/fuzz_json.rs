//! Deterministic JSON rendering of fuzz-campaign reports (`fuzz`
//! feature), on the shared [`jsonfmt`](crate::jsonfmt) builder.
//!
//! The `wcsim fuzz` report (`results/BENCH_fuzz.json`) must be
//! byte-identical across runs with the same seed and case count —
//! including runs resumed from a checkpoint directory — so the
//! rendering is fully deterministic: fixed key order, no maps, no
//! wall-clock facts, and one self-contained fragment per case that
//! doubles as the checkpoint unit. Only per-case cycle measurements
//! (which are themselves deterministic) appear.

use warped_compression::{CaseReport, SmokeOutcome};

use crate::jsonfmt::{block_list, inline, opt_display, quoted, JsonObject};

/// One case's fragment: the per-case checkpoint unit, reused verbatim
/// on `--resume`.
pub fn fuzz_case_json(report: &CaseReport) -> String {
    let obj = JsonObject::new(4)
        .display("case", report.index)
        .field("case_seed", format!("\"{:#018x}\"", report.case_seed))
        .display("instructions", report.kernel_instructions)
        .field(
            "launch",
            inline(&[
                ("blocks", report.blocks.to_string()),
                ("threads_per_block", report.threads_per_block.to_string()),
                ("mem_words", report.mem_words.to_string()),
            ]),
        );
    match &report.finding {
        None => obj
            .string("status", "ok")
            .display("dynamic_cycles", report.stats.dynamic_cycles)
            .display("dynamic_instructions", report.stats.instructions)
            .display("static_close", report.stats.static_close)
            .render_fragment(),
        Some(f) => obj
            .string("status", "finding")
            .string("category", f.category.label())
            .string("detail", &f.detail)
            .field(
                "shrunk",
                inline(&[
                    ("instructions", f.shrunk_instructions.to_string()),
                    ("blocks", f.shrunk_blocks.to_string()),
                    ("threads_per_block", f.shrunk_threads_per_block.to_string()),
                ]),
            )
            .render_fragment(),
    }
}

/// One smoke outcome as an inline object.
fn smoke_json(outcome: &SmokeOutcome) -> String {
    format!(
        "    {}",
        inline(&[
            ("mutation", quoted(outcome.mutation.name())),
            ("expected", quoted(outcome.expected.label())),
            ("cases_scanned", outcome.cases_scanned.to_string()),
            ("passed", outcome.passed().to_string()),
            (
                "shrunk_instructions",
                opt_display(
                    outcome
                        .caught
                        .as_ref()
                        .and_then(|r| r.finding.as_ref())
                        .map(|f| f.shrunk_instructions),
                ),
            ),
        ])
    )
}

/// The whole `BENCH_fuzz.json` document from per-case fragments
/// (freshly rendered or loaded verbatim from checkpoints) plus the
/// mutation-smoke outcomes.
pub fn fuzz_campaign_json(
    campaign_seed: u64,
    cycle_budget: u64,
    findings: usize,
    fragments: &[String],
    smoke: &[SmokeOutcome],
) -> String {
    let smoke_rows: Vec<String> = smoke.iter().map(smoke_json).collect();
    JsonObject::new(0)
        .display("seed", campaign_seed)
        .display("cases", fragments.len())
        .display("cycle_budget", cycle_budget)
        .display("findings", findings)
        .display("smoke_passed", smoke.iter().all(SmokeOutcome::passed))
        .field("smoke", block_list(2, &smoke_rows))
        .field("case_reports", block_list(2, fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::{mutation_smoke, run_case, FuzzConfig};

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let cfg = FuzzConfig::default();
        let render = || {
            let frags: Vec<String> = (0..6).map(|i| fuzz_case_json(&run_case(&cfg, i))).collect();
            let smoke = mutation_smoke(cfg.seed, cfg.cycle_budget, 32);
            let findings = frags.iter().filter(|f| f.contains("\"finding\"")).count();
            fuzz_campaign_json(cfg.seed, cfg.cycle_budget, findings, &frags, &smoke)
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "same seed must render byte-identically");
        assert!(a.contains("\"status\": \"ok\""));
        assert!(a.contains("\"findings\": 0"));
        assert!(a.contains("\"smoke_passed\": true"));
        assert!(a.contains("\"mutation\": \"flip-hazard-window\""));
    }

    #[test]
    fn finding_fragments_carry_the_triage() {
        let cfg = FuzzConfig {
            mutation: Some(warped_compression::Mutation::InjectPanic),
            ..FuzzConfig::default()
        };
        let json = fuzz_case_json(&run_case(&cfg, 0));
        assert!(json.contains("\"status\": \"finding\""));
        assert!(json.contains("\"category\": \"panic\""));
        assert!(json.contains("\"shrunk\""));
    }
}
