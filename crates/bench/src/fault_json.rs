//! Hand-rolled, deterministic JSON rendering of fault-campaign reports
//! (`faults` feature).
//!
//! The `wcsim faults` report (`results/BENCH_faults.json`) must be
//! byte-identical across runs with the same seed — including runs
//! resumed from a checkpoint directory — so the rendering here is fully
//! deterministic: fixed key order, no maps, floats through Rust's
//! shortest-round-trip formatter, and one self-contained fragment per
//! kernel that doubles as the checkpoint unit.

use warped_compression::{KernelFaultReport, RunRecord, RunStatus};

use crate::jsonfmt::esc;

/// One kernel's fragment: the per-kernel checkpoint unit, reused
/// verbatim on `--resume`.
pub fn fault_record_json(record: &RunRecord<KernelFaultReport>) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    out.push_str(&format!("      \"kernel\": \"{}\",\n", esc(&record.name)));
    out.push_str(&format!(
        "      \"status\": \"{}\",\n",
        record.status.label()
    ));
    match (&record.status, &record.output) {
        (RunStatus::Completed { .. }, Some(k)) => {
            out.push_str(&format!("      \"seed\": {},\n", k.seed));
            out.push_str(&format!(
                "      \"protection\": \"{}\",\n",
                k.protection.name()
            ));
            out.push_str(&format!("      \"completed\": {},\n", k.completed));
            match &k.error {
                Some(e) => out.push_str(&format!("      \"error\": \"{}\",\n", esc(e))),
                None => out.push_str("      \"error\": null,\n"),
            }
            out.push_str(&format!(
                "      \"outcomes\": {{\"not_triggered\": {}, \"masked\": {}, \
                 \"corrected\": {}, \"detected\": {}, \"silent_corruption\": {}}},\n",
                k.log.not_triggered(),
                k.log.masked(),
                k.log.corrected(),
                k.log.detected(),
                k.log.silent(),
            ));
            out.push_str("      \"events\": [\n");
            for (i, e) in k.log.events.iter().enumerate() {
                let comma = if i + 1 < k.log.events.len() { "," } else { "" };
                out.push_str(&format!(
                    "        {{\"id\": {}, \"kind\": \"{}\", \"target\": \"{}\", \
                     \"outcome\": \"{}\", \"note\": \"{}\"}}{comma}\n",
                    e.spec_id,
                    e.kind.name(),
                    e.target.name(),
                    e.outcome.name(),
                    esc(e.note),
                ));
            }
            out.push_str("      ],\n");
            out.push_str(&format!(
                "      \"writes\": {}, \"reads\": {},\n",
                k.log.writes, k.log.reads
            ));
            out.push_str(&format!(
                "      \"stuck\": {{\"masked_by_slack\": {}, \"redirected\": {}, \
                 \"applied\": {}}},\n",
                k.log.stuck_masked_by_slack, k.log.stuck_redirected, k.log.stuck_applied,
            ));
            out.push_str(&format!(
                "      \"redirection\": {{\"total_reads\": {}, \"slack_only_coverage\": {}, \
                 \"redirection_coverage\": {}}},\n",
                k.redirection.total_reads,
                k.redirection.slack_only_coverage,
                k.redirection.redirection_coverage,
            ));
            out.push_str(&format!("      \"energy_scale\": {},\n", k.energy_scale));
            match k.energy_pj {
                Some(pj) => out.push_str(&format!("      \"energy_pj\": {pj}\n")),
                None => out.push_str("      \"energy_pj\": null\n"),
            }
        }
        (RunStatus::Panicked { message, .. }, _) => {
            out.push_str(&format!("      \"message\": \"{}\"\n", esc(message)));
        }
        (RunStatus::Failed { error }, _) => {
            out.push_str(&format!("      \"message\": \"{}\"\n", esc(error)));
        }
        (RunStatus::TimedOut { budget }, _) => {
            out.push_str(&format!("      \"cycle_budget\": {budget}\n"));
        }
        // Completed always carries an output; keep the renderer total.
        (RunStatus::Completed { .. }, None) => {
            out.push_str("      \"message\": \"completed without output\"\n");
        }
    }
    out.push_str("    }");
    out
}

/// The whole `BENCH_faults.json` document from per-kernel fragments
/// (freshly rendered or loaded verbatim from checkpoints).
pub fn fault_campaign_json(
    campaign_seed: u64,
    injections: usize,
    protection: &str,
    fragments: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {campaign_seed},\n"));
    out.push_str(&format!("  \"injections_per_kernel\": {injections},\n"));
    out.push_str(&format!("  \"protection\": \"{}\",\n", esc(protection)));
    out.push_str("  \"kernels\": [\n");
    for (i, frag) in fragments.iter().enumerate() {
        out.push_str(frag);
        out.push_str(if i + 1 < fragments.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::RunPolicy;

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let workloads = vec![gpu_workloads::by_name("lib").unwrap()];
        let render = || {
            let records = warped_compression::run_fault_campaign(
                &workloads,
                gpu_faults::ProtectionModel::SecDed,
                4,
                42,
                &RunPolicy::default(),
            );
            let frags: Vec<String> = records.iter().map(fault_record_json).collect();
            fault_campaign_json(42, 4, "secded", &frags)
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "same seed must render byte-identically");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"status\": \"ok\""));
        assert!(a.contains("\"silent_corruption\": 0"));
        assert!(a.contains("\"injections_per_kernel\": 4"));
    }

    #[test]
    fn failed_records_render_their_message() {
        let record: RunRecord<KernelFaultReport> = RunRecord {
            name: "doomed".into(),
            status: RunStatus::Panicked {
                message: "say \"hi\"\nbye".into(),
                backtrace: String::new(),
            },
            output: None,
        };
        let json = fault_record_json(&record);
        assert!(json.contains("\"status\": \"panic\""));
        assert!(json.contains("say \\\"hi\\\"\\nbye"));
    }
}
