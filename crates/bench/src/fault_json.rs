//! Deterministic JSON rendering of fault-campaign reports (`faults`
//! feature), on the shared [`jsonfmt`](crate::jsonfmt) builder.
//!
//! The `wcsim faults` report (`results/BENCH_faults.json`) must be
//! byte-identical across runs with the same seed — including runs
//! resumed from a checkpoint directory — so the rendering is fully
//! deterministic: fixed key order, no maps, floats through Rust's
//! shortest-round-trip formatter, and one self-contained fragment per
//! kernel that doubles as the checkpoint unit.

use warped_compression::{KernelFaultReport, RunRecord, RunStatus};

use crate::jsonfmt::{block_list, inline, opt_display, quoted, JsonObject};

/// One kernel's fragment: the per-kernel checkpoint unit, reused
/// verbatim on `--resume`.
pub fn fault_record_json(record: &RunRecord<KernelFaultReport>) -> String {
    let obj = JsonObject::new(4)
        .string("kernel", &record.name)
        .string("status", record.status.label());
    match (&record.status, &record.output) {
        (RunStatus::Completed { .. }, Some(k)) => {
            let events: Vec<String> = k
                .log
                .events
                .iter()
                .map(|e| {
                    format!(
                        "        {}",
                        inline(&[
                            ("id", e.spec_id.to_string()),
                            ("kind", quoted(e.kind.name())),
                            ("target", quoted(e.target.name())),
                            ("outcome", quoted(e.outcome.name())),
                            ("note", quoted(e.note)),
                        ])
                    )
                })
                .collect();
            obj.display("seed", k.seed)
                .string("protection", k.protection.name())
                .display("completed", k.completed)
                .field("error", opt_display(k.error.as_deref().map(quoted)))
                .field(
                    "outcomes",
                    inline(&[
                        ("not_triggered", k.log.not_triggered().to_string()),
                        ("masked", k.log.masked().to_string()),
                        ("corrected", k.log.corrected().to_string()),
                        ("detected", k.log.detected().to_string()),
                        ("silent_corruption", k.log.silent().to_string()),
                    ]),
                )
                .field("events", block_list(6, &events))
                .display("writes", k.log.writes)
                .display("reads", k.log.reads)
                .field(
                    "stuck",
                    inline(&[
                        ("masked_by_slack", k.log.stuck_masked_by_slack.to_string()),
                        ("redirected", k.log.stuck_redirected.to_string()),
                        ("applied", k.log.stuck_applied.to_string()),
                    ]),
                )
                .field(
                    "redirection",
                    inline(&[
                        ("total_reads", k.redirection.total_reads.to_string()),
                        (
                            "slack_only_coverage",
                            k.redirection.slack_only_coverage.to_string(),
                        ),
                        (
                            "redirection_coverage",
                            k.redirection.redirection_coverage.to_string(),
                        ),
                    ]),
                )
                .display("energy_scale", k.energy_scale)
                .field("energy_pj", opt_display(k.energy_pj))
                .render_fragment()
        }
        (RunStatus::Panicked { message, .. }, _) => {
            obj.string("message", message).render_fragment()
        }
        (RunStatus::Failed { error }, _) => obj.string("message", error).render_fragment(),
        (RunStatus::TimedOut { budget }, _) => {
            obj.display("cycle_budget", budget).render_fragment()
        }
        // Completed always carries an output; keep the renderer total.
        (RunStatus::Completed { .. }, None) => obj
            .string("message", "completed without output")
            .render_fragment(),
    }
}

/// The whole `BENCH_faults.json` document from per-kernel fragments
/// (freshly rendered or loaded verbatim from checkpoints).
pub fn fault_campaign_json(
    campaign_seed: u64,
    injections: usize,
    protection: &str,
    fragments: &[String],
) -> String {
    JsonObject::new(0)
        .display("seed", campaign_seed)
        .display("injections_per_kernel", injections)
        .string("protection", protection)
        .field("kernels", block_list(2, fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::RunPolicy;

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let workloads = vec![gpu_workloads::by_name("lib").unwrap()];
        let render = || {
            let records = warped_compression::run_fault_campaign(
                &workloads,
                gpu_faults::ProtectionModel::SecDed,
                4,
                42,
                &RunPolicy::default(),
            );
            let frags: Vec<String> = records.iter().map(fault_record_json).collect();
            fault_campaign_json(42, 4, "secded", &frags)
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "same seed must render byte-identically");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"status\": \"ok\""));
        assert!(a.contains("\"silent_corruption\": 0"));
        assert!(a.contains("\"injections_per_kernel\": 4"));
    }

    #[test]
    fn failed_records_render_their_message() {
        let record: RunRecord<KernelFaultReport> = RunRecord {
            name: "doomed".into(),
            status: RunStatus::Panicked {
                message: "say \"hi\"\nbye".into(),
                backtrace: String::new(),
            },
            output: None,
        };
        let json = fault_record_json(&record);
        assert!(json.contains("\"status\": \"panic\""));
        assert!(json.contains("say \\\"hi\\\"\\nbye"));
    }
}
