//! A rendered figure/table: headers plus rows of cells.

use serde::Serialize;

/// One regenerated table or figure, ready for rendering.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FigureTable {
    /// Identifier, e.g. `"fig8"`.
    pub id: String,
    /// Human title, e.g. `"Compression ratio (divergent vs non-divergent)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    /// Creates a table; panics in debug builds if a row width mismatches
    /// the header width.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        let headers: Vec<String> = headers;
        debug_assert!(
            rows.iter().all(|r| r.len() == headers.len()),
            "ragged figure table"
        );
        FigureTable {
            id: id.into(),
            title: title.into(),
            headers,
            rows,
        }
    }

    /// Appends a `status` column (e.g. `ok` / `timeout` / `failed` /
    /// `panic`) to every row — how partial campaign results degrade into
    /// a full-width table instead of a truncated one.
    ///
    /// # Panics
    ///
    /// Panics if `statuses` and the row count disagree.
    pub fn with_status_column(mut self, statuses: &[&str]) -> Self {
        assert_eq!(statuses.len(), self.rows.len(), "one status per table row");
        self.headers.push("status".into());
        for (row, status) in self.rows.iter_mut().zip(statuses) {
            row.push((*status).into());
        }
        self
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// CSV rendering (RFC-4180-lite: cells here never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio/fraction consistently across figures.
pub(crate) fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub(crate) fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        FigureTable::new(
            "figX",
            "Sample",
            vec!["bench".into(), "value".into()],
            vec![vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]],
        )
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### figX — Sample"));
        assert!(md.contains("| bench | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| b | 2 |"));
    }

    #[test]
    fn csv_round_trips_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv, "bench,value\na,1\nb,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(2.4999), "2.500");
        assert_eq!(pct(0.253), "25.3%");
    }

    #[test]
    fn status_column_extends_headers_and_rows() {
        let t = sample().with_status_column(&["ok", "panic"]);
        assert_eq!(t.headers.last().map(String::as_str), Some("status"));
        assert_eq!(t.rows[0].last().map(String::as_str), Some("ok"));
        assert_eq!(t.rows[1].last().map(String::as_str), Some("panic"));
        assert!(t.to_csv().contains("b,2,panic"));
    }
}
