//! Per-run JSON fragment checkpoints for interruptible campaigns.
//!
//! A campaign writes one fragment file per completed (design point,
//! kernel) pair under `<root>/<design>/<kernel>.json`. A fragment's
//! existence means that run completed; its content is reused **verbatim**
//! on resume, so a resumed campaign's final report is byte-identical to
//! an uninterrupted one. Saves go through a temp-file + rename, so an
//! interrupt mid-write never leaves a truncated fragment behind to poison
//! the resume.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Filesystem store of per-run checkpoint fragments.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `root` (created lazily on first save).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CheckpointStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the fragment for one (design, kernel) pair.
    pub fn fragment_path(&self, design: &str, kernel: &str) -> PathBuf {
        self.root
            .join(sanitize(design))
            .join(format!("{}.json", sanitize(kernel)))
    }

    /// The fragment's content if that run already completed.
    pub fn load(&self, design: &str, kernel: &str) -> Option<String> {
        fs::read_to_string(self.fragment_path(design, kernel)).ok()
    }

    /// Records a completed run. Written via temp file + rename so a
    /// fragment either exists complete or not at all.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable root, disk full).
    pub fn save(&self, design: &str, kernel: &str, content: &str) -> io::Result<()> {
        let path = self.fragment_path(design, kernel);
        let dir = path.parent().expect("fragment path has a parent");
        fs::create_dir_all(dir)?;
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, content)?;
        fs::rename(&tmp, &path)
    }

    /// Number of fragments already present for a design.
    pub fn completed(&self, design: &str) -> usize {
        let dir = self.root.join(sanitize(design));
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// Keeps `[A-Za-z0-9._-]`, replaces everything else with `-`, so design
/// labels like `latency-c8-d4` or `only<4,1>` become safe path segments.
fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unnamed".into()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("wc-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    #[test]
    fn save_load_round_trips_verbatim() {
        let store = temp_store("roundtrip");
        assert!(store.load("warped-compression", "bfs").is_none());
        let content = "{\"kernel\": \"bfs\",\n  \"x\": 1}\n";
        store.save("warped-compression", "bfs", content).unwrap();
        assert_eq!(
            store.load("warped-compression", "bfs").as_deref(),
            Some(content)
        );
        assert_eq!(store.completed("warped-compression"), 1);
        assert_eq!(store.completed("baseline"), 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn labels_are_sanitized_into_safe_paths() {
        let store = temp_store("sanitize");
        store.save("only<4,1>", "a/b kernel", "{}").unwrap();
        let path = store.fragment_path("only<4,1>", "a/b kernel");
        assert!(path.ends_with("only-4-1-/a-b-kernel.json"), "{path:?}");
        assert!(path.exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let store = temp_store("tmpfiles");
        store.save("d", "k", "content").unwrap();
        let dir = store.fragment_path("d", "k");
        let dir = dir.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(store.root());
    }
}
