//! One function per table/figure of the paper's evaluation.
//!
//! Each returns a [`FigureTable`] whose rows mirror what the paper plots.
//! Absolute values come from our simulator + the Table 3 energy model;
//! the *shapes* (who wins, by what factor) are the reproduction targets
//! recorded in `EXPERIMENTS.md`.

use bdi::{FixedChoice, TABLE_ONE};
use gpu_power::{EnergyParams, EnergyReport};
use warped_compression::{energy_of, DesignPoint, RunOutput, SimilarityBin};

use crate::campaign::Campaign;
use crate::table::{fmt, pct, FigureTable};

fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn paper_params() -> EnergyParams {
    EnergyParams::paper_table3()
}

fn energies(runs: &[RunOutput], params: &EnergyParams) -> Vec<EnergyReport> {
    runs.iter().map(|r| energy_of(&r.stats, params)).collect()
}

/// Table 1: static ⟨base, delta⟩ sizes and bank counts.
pub fn table1() -> FigureTable {
    let rows = TABLE_ONE
        .iter()
        .map(|r| {
            vec![
                r.base_bytes.to_string(),
                r.delta_bytes.to_string(),
                r.compressed_bytes.to_string(),
                r.banks_required.to_string(),
                if r.used { "Y" } else { "N" }.to_string(),
            ]
        })
        .collect();
    FigureTable::new(
        "table1",
        "Possible combinations of chunk size",
        vec![
            "base (B)".into(),
            "delta (B)".into(),
            "comp size (B)".into(),
            "banks".into(),
            "used".into(),
        ],
        rows,
    )
}

/// Table 2: microarchitectural parameters of the simulated GPU.
pub fn table2() -> FigureTable {
    let cfg = DesignPoint::WarpedCompression.config();
    let kv: Vec<(&str, String)> = vec![
        ("SMs / GPU", cfg.num_sms.to_string()),
        ("Warp schedulers / SM", cfg.num_schedulers.to_string()),
        ("Warp scheduling policy", format!("{:?}", cfg.scheduler)),
        ("SIMT lane width", cfg.warp_size.to_string()),
        ("Max warps / SM", cfg.max_warps_per_sm.to_string()),
        (
            "Register file size",
            format!("{} KB", cfg.regfile.capacity_bytes() / 1024),
        ),
        (
            "Max registers / SM",
            cfg.regfile.total_thread_registers().to_string(),
        ),
        ("Register banks", cfg.regfile.num_banks.to_string()),
        ("Bit width / bank", format!("{} bit", bdi::BANK_BYTES * 8)),
        ("Entries / bank", cfg.regfile.entries_per_bank.to_string()),
        ("Compressors", cfg.compression.num_compressors.to_string()),
        (
            "Decompressors",
            cfg.compression.num_decompressors.to_string(),
        ),
        (
            "Compression latency",
            format!("{} cycles", cfg.compression.compression_latency),
        ),
        (
            "Decompression latency",
            format!("{} cycles", cfg.compression.decompression_latency),
        ),
        (
            "Bank wakeup latency",
            format!("{} cycles", cfg.regfile.wakeup_latency),
        ),
    ];
    FigureTable::new(
        "table2",
        "GPU microarchitectural parameters",
        vec!["parameter".into(), "value".into()],
        kv.into_iter()
            .map(|(k, v)| vec![k.to_string(), v])
            .collect(),
    )
}

/// Table 3: energy/power constants.
pub fn table3() -> FigureTable {
    let p = paper_params();
    let kv: Vec<(&str, String)> = vec![
        ("Operating voltage (V)", format!("{:.1}", p.voltage_v)),
        (
            "Wire capacitance (fF/mm)",
            format!("{:.0}", p.wire_cap_ff_per_mm),
        ),
        (
            "Wire energy (128-bit, pJ/mm)",
            format!("{:.1}", p.wire_energy_pj()),
        ),
        (
            "Access energy/bank (pJ)",
            format!("{:.0}", p.bank_access_pj),
        ),
        (
            "Leakage power/bank (mW)",
            format!("{:.1}", p.bank_leakage_mw),
        ),
        (
            "Compression energy/activation (pJ)",
            format!("{:.0}", p.compressor_pj),
        ),
        (
            "Compression leakage (mW)",
            format!("{:.2}", p.compressor_leakage_mw),
        ),
        (
            "Decompression energy/activation (pJ)",
            format!("{:.0}", p.decompressor_pj),
        ),
        (
            "Decompression leakage (mW)",
            format!("{:.2}", p.decompressor_leakage_mw),
        ),
    ];
    FigureTable::new(
        "table3",
        "Estimated energy and power values (@45nm)",
        vec!["description".into(), "value".into()],
        kv.into_iter()
            .map(|(k, v)| vec![k.to_string(), v])
            .collect(),
    )
}

/// Fig. 2: register-value similarity bins, non-divergent vs divergent.
pub fn fig2(campaign: &mut Campaign) -> FigureTable {
    let mut rows = Vec::new();
    let mut merged = warped_compression::SimilarityHistogram::new();
    for run in campaign.results(DesignPoint::WarpedCompression) {
        merged.merge(&run.similarity);
        let mut row = vec![run.name.clone()];
        for &div in &[false, true] {
            for bin in SimilarityBin::ALL {
                row.push(if run.similarity.total(div) == 0 && div {
                    "N/A".to_string()
                } else {
                    pct(run.similarity.fraction(bin, div))
                });
            }
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for &div in &[false, true] {
        for bin in SimilarityBin::ALL {
            avg.push(pct(merged.fraction(bin, div)));
        }
    }
    rows.push(avg);
    FigureTable::new(
        "fig2",
        "Characterization of register values (zero/128/32K/random bins)",
        vec![
            "bench".into(),
            "nd zero".into(),
            "nd 128".into(),
            "nd 32K".into(),
            "nd random".into(),
            "div zero".into(),
            "div 128".into(),
            "div 32K".into(),
            "div random".into(),
        ],
        rows,
    )
}

/// Fig. 3: ratio of non-divergent warp instructions.
pub fn fig3(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| vec![r.name.clone(), pct(r.stats.nondivergent_ratio())])
        .collect();
    rows.push(vec![
        "average".into(),
        pct(mean(runs.iter().map(|r| r.stats.nondivergent_ratio()))),
    ]);
    FigureTable::new(
        "fig3",
        "Ratio of non-diverged warp instructions",
        vec!["bench".into(), "non-divergent".into()],
        rows,
    )
}

/// Fig. 5: best ⟨base, delta⟩ breakdown under the full BDI explorer.
pub fn fig5(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let mut headers = vec!["bench".to_string()];
    for (b, d) in bdi::EXPLORER_CHOICES {
        headers.push(format!("<{},{}>", b.bytes(), d));
    }
    headers.push("uncompressed".into());
    headers.push("8B-base total".into());
    let mut rows = Vec::new();
    let mut merged = warped_compression::ChoiceBreakdown::new();
    for run in runs {
        merged.merge(&run.breakdown);
        let mut row = vec![run.name.clone()];
        for (b, d) in bdi::EXPLORER_CHOICES {
            row.push(pct(run.breakdown.fraction(b, d)));
        }
        let total = run.breakdown.total().max(1);
        row.push(pct(run.breakdown.uncompressed() as f64 / total as f64));
        row.push(pct(run.breakdown.eight_byte_fraction()));
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for (b, d) in bdi::EXPLORER_CHOICES {
        avg.push(pct(merged.fraction(b, d)));
    }
    avg.push(pct(
        merged.uncompressed() as f64 / merged.total().max(1) as f64
    ));
    avg.push(pct(merged.eight_byte_fraction()));
    rows.push(avg);
    FigureTable::new(
        "fig5",
        "Breakdown of <base,delta> best choices (full BDI explorer)",
        headers,
        rows,
    )
}

/// Fig. 8: compression ratio, divergent vs non-divergent regions.
///
/// Measured under the decompress-merge-recompress assumption, exactly as
/// the paper does ("we assume that during divergence every new register
/// write will be preceded by a register read ... The updated register is
/// then compressed again", §5.2) — the shipping policy stores divergent
/// writes uncompressed, which would make the divergent column trivially
/// 1.0.
pub fn fig8(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::DecompressMergeRecompress);
    let mut rows = Vec::new();
    for r in runs {
        rows.push(vec![
            r.name.clone(),
            fmt(r.stats.compression_ratio_nondiv()),
            r.stats
                .compression_ratio_div()
                .map(fmt)
                .unwrap_or_else(|| "N/A".into()),
        ]);
    }
    rows.push(vec![
        "average".into(),
        fmt(mean(
            runs.iter().map(|r| r.stats.compression_ratio_nondiv()),
        )),
        fmt(mean(
            runs.iter().filter_map(|r| r.stats.compression_ratio_div()),
        )),
    ]);
    FigureTable::new(
        "fig8",
        "Compression ratio (non-divergent vs divergent)",
        vec!["bench".into(), "non-divergent".into(), "divergent".into()],
        rows,
    )
}

/// Fig. 9: register file energy, baseline vs warped-compression, split
/// into leakage / dynamic / compression / decompression (normalised to
/// the baseline total).
pub fn fig9(campaign: &mut Campaign) -> FigureTable {
    let p = paper_params();
    let base = energies(campaign.results(DesignPoint::Baseline), &p);
    let wc_runs = campaign.results(DesignPoint::WarpedCompression);
    let wc = energies(wc_runs, &p);
    let names: Vec<String> = wc_runs.iter().map(|r| r.name.clone()).collect();
    let mut rows = Vec::new();
    for i in 0..names.len() {
        let bt = base[i].total_pj();
        rows.push(vec![
            names[i].clone(),
            fmt(base[i].leakage_pj / bt),
            fmt(base[i].dynamic_pj / bt),
            fmt(wc[i].leakage_pj / bt),
            fmt(wc[i].dynamic_pj / bt),
            fmt(wc[i].compression_pj / bt),
            fmt(wc[i].decompression_pj / bt),
            pct(wc[i].savings_vs(&base[i])),
        ]);
    }
    rows.push(vec![
        "average".into(),
        fmt(mean(base.iter().map(|b| b.leakage_pj / b.total_pj()))),
        fmt(mean(base.iter().map(|b| b.dynamic_pj / b.total_pj()))),
        fmt(mean(
            wc.iter()
                .zip(&base)
                .map(|(w, b)| w.leakage_pj / b.total_pj()),
        )),
        fmt(mean(
            wc.iter()
                .zip(&base)
                .map(|(w, b)| w.dynamic_pj / b.total_pj()),
        )),
        fmt(mean(
            wc.iter()
                .zip(&base)
                .map(|(w, b)| w.compression_pj / b.total_pj()),
        )),
        fmt(mean(
            wc.iter()
                .zip(&base)
                .map(|(w, b)| w.decompression_pj / b.total_pj()),
        )),
        pct(mean(wc.iter().zip(&base).map(|(w, b)| w.savings_vs(b)))),
    ]);
    FigureTable::new(
        "fig9",
        "Register file energy consumption (normalised to baseline)",
        vec![
            "bench".into(),
            "base leak".into(),
            "base dyn".into(),
            "wc leak".into(),
            "wc dyn".into(),
            "wc comp".into(),
            "wc decomp".into(),
            "saving".into(),
        ],
        rows,
    )
}

/// Fig. 10: fraction of cycles each bank spends power-gated (averaged
/// over the suite).
pub fn fig10(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let num_banks = runs[0].stats.regfile.num_banks();
    let mut rows = Vec::new();
    for bank in 0..num_banks {
        let f = mean(runs.iter().map(|r| r.stats.regfile.gated_fraction(bank)));
        rows.push(vec![bank.to_string(), pct(f)]);
    }
    FigureTable::new(
        "fig10",
        "Portion of power-gated cycles for each bank (suite average)",
        vec!["bank".into(), "gated".into()],
        rows,
    )
}

/// Fig. 11: dummy MOV instructions as a fraction of total instructions.
pub fn fig11(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| vec![r.name.clone(), pct(r.stats.mov_fraction())])
        .collect();
    rows.push(vec![
        "average".into(),
        pct(mean(runs.iter().map(|r| r.stats.mov_fraction()))),
    ]);
    FigureTable::new(
        "fig11",
        "Portion of dummy MOV instructions",
        vec!["bench".into(), "MOV fraction".into()],
        rows,
    )
}

/// Fig. 12: fraction of registers in compressed state, per phase.
pub fn fig12(campaign: &mut Campaign) -> FigureTable {
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let mut rows = Vec::new();
    for r in runs {
        rows.push(vec![
            r.name.clone(),
            pct(r.stats.census.nondiv_fraction()),
            r.stats
                .census
                .div_fraction()
                .map(pct)
                .unwrap_or_else(|| "N/A".into()),
        ]);
    }
    rows.push(vec![
        "average".into(),
        pct(mean(runs.iter().map(|r| r.stats.census.nondiv_fraction()))),
        pct(mean(
            runs.iter().filter_map(|r| r.stats.census.div_fraction()),
        )),
    ]);
    FigureTable::new(
        "fig12",
        "Portion of compressed registers (non-divergent vs divergent phases)",
        vec!["bench".into(), "non-divergent".into(), "divergent".into()],
        rows,
    )
}

/// Fig. 13: execution-time impact of warped-compression.
pub fn fig13(campaign: &mut Campaign) -> FigureTable {
    let base: Vec<u64> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.stats.cycles)
        .collect();
    let runs = campaign.results(DesignPoint::WarpedCompression);
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (r, &b) in runs.iter().zip(&base) {
        let ratio = r.stats.cycles as f64 / b as f64;
        ratios.push(ratio);
        rows.push(vec![r.name.clone(), fmt(ratio)]);
    }
    rows.push(vec!["average".into(), fmt(mean(ratios))]);
    FigureTable::new(
        "fig13",
        "Impact on execution time (cycles, normalised to baseline)",
        vec!["bench".into(), "normalised time".into()],
        rows,
    )
}

/// Fig. 14: energy reduction under GTO vs LRR scheduling.
pub fn fig14(campaign: &mut Campaign) -> FigureTable {
    let p = paper_params();
    let base_gto = energies(campaign.results(DesignPoint::Baseline), &p);
    let wc_gto = energies(campaign.results(DesignPoint::WarpedCompression), &p);
    let base_lrr = energies(campaign.results(DesignPoint::BaselineLrr), &p);
    let wc_lrr = energies(campaign.results(DesignPoint::WarpedCompressionLrr), &p);
    let names: Vec<String> = campaign
        .results(DesignPoint::WarpedCompression)
        .iter()
        .map(|r| r.name.clone())
        .collect();
    let mut rows = Vec::new();
    for i in 0..names.len() {
        rows.push(vec![
            names[i].clone(),
            fmt(wc_gto[i].normalized_to(&base_gto[i])),
            fmt(wc_lrr[i].normalized_to(&base_lrr[i])),
        ]);
    }
    rows.push(vec![
        "average".into(),
        fmt(mean(
            wc_gto
                .iter()
                .zip(&base_gto)
                .map(|(w, b)| w.normalized_to(b)),
        )),
        fmt(mean(
            wc_lrr
                .iter()
                .zip(&base_lrr)
                .map(|(w, b)| w.normalized_to(b)),
        )),
    ]);
    FigureTable::new(
        "fig14",
        "Energy reduction: GTO vs LRR warp schedulers (normalised)",
        vec!["bench".into(), "GTO".into(), "LRR".into()],
        rows,
    )
}

/// Fig. 15: compression ratio with a single fixed parameter vs dynamic.
pub fn fig15(campaign: &mut Campaign) -> FigureTable {
    let d0: Vec<f64> = campaign
        .results(DesignPoint::Only(FixedChoice::Delta0))
        .iter()
        .map(|r| r.stats.compression_ratio())
        .collect();
    let d1: Vec<f64> = campaign
        .results(DesignPoint::Only(FixedChoice::Delta1))
        .iter()
        .map(|r| r.stats.compression_ratio())
        .collect();
    let d2: Vec<f64> = campaign
        .results(DesignPoint::Only(FixedChoice::Delta2))
        .iter()
        .map(|r| r.stats.compression_ratio())
        .collect();
    let wc = campaign.results(DesignPoint::WarpedCompression);
    let mut rows = Vec::new();
    for (i, r) in wc.iter().enumerate() {
        rows.push(vec![
            r.name.clone(),
            fmt(d0[i]),
            fmt(d1[i]),
            fmt(d2[i]),
            fmt(r.stats.compression_ratio()),
        ]);
    }
    rows.push(vec![
        "average".into(),
        fmt(mean(d0.iter().copied())),
        fmt(mean(d1.iter().copied())),
        fmt(mean(d2.iter().copied())),
        fmt(mean(wc.iter().map(|r| r.stats.compression_ratio()))),
    ]);
    FigureTable::new(
        "fig15",
        "Compression ratio for various compression parameters",
        vec![
            "bench".into(),
            "<4,0>".into(),
            "<4,1>".into(),
            "<4,2>".into(),
            "warped".into(),
        ],
        rows,
    )
}

/// Fig. 16: energy for single-parameter schemes (normalised to baseline).
pub fn fig16(campaign: &mut Campaign) -> FigureTable {
    let p = paper_params();
    let base = energies(campaign.results(DesignPoint::Baseline), &p);
    let d0 = energies(campaign.results(DesignPoint::Only(FixedChoice::Delta0)), &p);
    let d1 = energies(campaign.results(DesignPoint::Only(FixedChoice::Delta1)), &p);
    let d2 = energies(campaign.results(DesignPoint::Only(FixedChoice::Delta2)), &p);
    let wc = energies(campaign.results(DesignPoint::WarpedCompression), &p);
    let names: Vec<String> = campaign
        .results(DesignPoint::WarpedCompression)
        .iter()
        .map(|r| r.name.clone())
        .collect();
    let mut rows = Vec::new();
    for i in 0..names.len() {
        rows.push(vec![
            names[i].clone(),
            fmt(d0[i].normalized_to(&base[i])),
            fmt(d1[i].normalized_to(&base[i])),
            fmt(d2[i].normalized_to(&base[i])),
            fmt(wc[i].normalized_to(&base[i])),
        ]);
    }
    let avg = |set: &[EnergyReport]| mean(set.iter().zip(&base).map(|(s, b)| s.normalized_to(b)));
    rows.push(vec![
        "average".into(),
        fmt(avg(&d0)),
        fmt(avg(&d1)),
        fmt(avg(&d2)),
        fmt(avg(&wc)),
    ]);
    FigureTable::new(
        "fig16",
        "Energy consumption for various compression parameters (normalised)",
        vec![
            "bench".into(),
            "<4,0>".into(),
            "<4,1>".into(),
            "<4,2>".into(),
            "warped".into(),
        ],
        rows,
    )
}

/// Fig. 17: sensitivity to compression/decompression activation energy.
pub fn fig17(campaign: &mut Campaign) -> FigureTable {
    scaled_energy_figure(
        campaign,
        "fig17",
        "Energy for scaled compression/decompression unit energy (normalised)",
        &[1.0, 1.5, 2.0, 2.5],
        |scale| (paper_params().with_comp_decomp_scale(scale), paper_params()),
    )
}

/// Fig. 18: sensitivity to per-bank access energy.
pub fn fig18(campaign: &mut Campaign) -> FigureTable {
    scaled_energy_figure(
        campaign,
        "fig18",
        "Energy for scaled per-bank access energy (normalised)",
        &[1.0, 1.5, 2.0, 2.5],
        |scale| {
            (
                paper_params().with_bank_access_scale(scale),
                paper_params().with_bank_access_scale(scale),
            )
        },
    )
}

/// Shared shape of Fig. 17/18: re-price cached runs under scaled energy
/// parameters; WC priced with `params.0`, baseline with `params.1`.
fn scaled_energy_figure(
    campaign: &mut Campaign,
    id: &str,
    title: &str,
    scales: &[f64],
    params_for: impl Fn(f64) -> (EnergyParams, EnergyParams),
) -> FigureTable {
    let base_stats: Vec<_> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.stats.clone())
        .collect();
    let wc_runs = campaign.results(DesignPoint::WarpedCompression);
    let names: Vec<String> = wc_runs.iter().map(|r| r.name.clone()).collect();
    let mut headers = vec!["bench".to_string()];
    headers.extend(scales.iter().map(|s| format!("{s:.1}x")));
    let mut rows = Vec::new();
    let mut avgs = vec![Vec::new(); scales.len()];
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for (si, &s) in scales.iter().enumerate() {
            let (wc_p, base_p) = params_for(s);
            let norm = energy_of(&wc_runs[i].stats, &wc_p)
                .normalized_to(&energy_of(&base_stats[i], &base_p));
            avgs[si].push(norm);
            row.push(fmt(norm));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for a in avgs {
        avg_row.push(fmt(mean(a)));
    }
    rows.push(avg_row);
    FigureTable::new(id, title, headers, rows)
}

/// Fig. 19: energy vs wire switching activity (suite average).
pub fn fig19(campaign: &mut Campaign) -> FigureTable {
    let base_stats: Vec<_> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.stats.clone())
        .collect();
    let wc_runs = campaign.results(DesignPoint::WarpedCompression);
    let mut rows = Vec::new();
    for activity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = paper_params().with_wire_activity(activity);
        let norm = mean(
            wc_runs
                .iter()
                .zip(&base_stats)
                .map(|(w, b)| energy_of(&w.stats, &p).normalized_to(&energy_of(b, &p))),
        );
        rows.push(vec![pct(activity), fmt(norm), pct(1.0 - norm)]);
    }
    FigureTable::new(
        "fig19",
        "Impact of wire activity (normalised energy, suite average)",
        vec![
            "wire activity".into(),
            "normalised energy".into(),
            "saving".into(),
        ],
        rows,
    )
}

/// Fig. 20: execution time vs compression latency (2/4/8 cycles).
pub fn fig20(campaign: &mut Campaign) -> FigureTable {
    latency_figure(
        campaign,
        "fig20",
        "Execution time vs compression latency",
        true,
    )
}

/// Fig. 21: execution time vs decompression latency (2/4/8 cycles).
pub fn fig21(campaign: &mut Campaign) -> FigureTable {
    latency_figure(
        campaign,
        "fig21",
        "Execution time vs decompression latency",
        false,
    )
}

fn latency_figure(
    campaign: &mut Campaign,
    id: &str,
    title: &str,
    vary_compression: bool,
) -> FigureTable {
    let base: Vec<u64> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.stats.cycles)
        .collect();
    let latencies = [2u64, 4, 8];
    let mut columns = Vec::new();
    for &l in &latencies {
        let point = if vary_compression {
            DesignPoint::Latency {
                compression: l,
                decompression: 1,
            }
        } else {
            DesignPoint::Latency {
                compression: 2,
                decompression: l,
            }
        };
        let cycles: Vec<u64> = campaign
            .results(point)
            .iter()
            .map(|r| r.stats.cycles)
            .collect();
        columns.push(cycles);
    }
    let names: Vec<String> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.name.clone())
        .collect();
    let mut headers = vec!["bench".to_string()];
    headers.extend(latencies.iter().map(|l| format!("{l} cycles")));
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for col in &columns {
            row.push(fmt(col[i] as f64 / base[i] as f64));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &columns {
        avg.push(fmt(mean(
            col.iter().zip(&base).map(|(&c, &b)| c as f64 / b as f64),
        )));
    }
    rows.push(avg);
    FigureTable::new(id, title, headers, rows)
}

/// Leakage-policy ablation (not a paper figure): §5.3 bank power gating
/// vs the prior-work drowsy alternative the paper cites. Gating saves all
/// leakage on empty banks but pays a 10-cycle wake-up; drowsy banks keep
/// a residual leakage fraction but wake in one cycle.
pub fn ablation_leakage(campaign: &mut Campaign) -> FigureTable {
    let p = paper_params();
    let base = energies(campaign.results(DesignPoint::Baseline), &p);
    let base_cycles: Vec<u64> = campaign
        .results(DesignPoint::Baseline)
        .iter()
        .map(|r| r.stats.cycles)
        .collect();
    let gate = energies(campaign.results(DesignPoint::WarpedCompression), &p);
    let gate_cycles: Vec<u64> = campaign
        .results(DesignPoint::WarpedCompression)
        .iter()
        .map(|r| r.stats.cycles)
        .collect();
    let drowsy = energies(campaign.results(DesignPoint::WarpedCompressionDrowsy), &p);
    let drowsy_runs = campaign.results(DesignPoint::WarpedCompressionDrowsy);
    let drowsy_cycles: Vec<u64> = drowsy_runs.iter().map(|r| r.stats.cycles).collect();
    let names: Vec<String> = drowsy_runs.iter().map(|r| r.name.clone()).collect();

    let mut rows = Vec::new();
    for i in 0..names.len() {
        rows.push(vec![
            names[i].clone(),
            fmt(gate[i].normalized_to(&base[i])),
            fmt(drowsy[i].normalized_to(&base[i])),
            fmt(gate_cycles[i] as f64 / base_cycles[i] as f64),
            fmt(drowsy_cycles[i] as f64 / base_cycles[i] as f64),
        ]);
    }
    rows.push(vec![
        "average".into(),
        fmt(mean(
            gate.iter().zip(&base).map(|(g, b)| g.normalized_to(b)),
        )),
        fmt(mean(
            drowsy.iter().zip(&base).map(|(d, b)| d.normalized_to(b)),
        )),
        fmt(mean(
            gate_cycles
                .iter()
                .zip(&base_cycles)
                .map(|(&g, &b)| g as f64 / b as f64),
        )),
        fmt(mean(
            drowsy_cycles
                .iter()
                .zip(&base_cycles)
                .map(|(&d, &b)| d as f64 / b as f64),
        )),
    ]);
    FigureTable::new(
        "ablation-leakage",
        "Leakage policy ablation: power gating vs drowsy banks (normalised to baseline)",
        vec![
            "bench".into(),
            "gate energy".into(),
            "drowsy energy".into(),
            "gate time".into(),
            "drowsy time".into(),
        ],
        rows,
    )
}

/// Codec study (paper §4's algorithm exploration): compression ratios of
/// the register-write stream under dynamic BDI (the shipped scheme), the
/// full unrestricted BDI explorer, and Frequent Pattern Compression.
/// FPC's variable-length bit stream cannot be decompressed in one cycle,
/// which is why the paper picks BDI even where FPC's ratio is close.
pub fn codec_study(campaign: &mut Campaign) -> FigureTable {
    use bdi::{explore_best_choice, BdiCodec, WARP_REGISTER_BYTES};
    use gpu_sim::GpuSim;

    let codec = BdiCodec::default();
    let mut rows = Vec::new();
    let mut totals = [0u64; 4]; // logical, bdi, full, fpc
    for w in campaign.workloads() {
        let (mut logical, mut bdi_b, mut full_b, mut fpc_b) = (0u64, 0u64, 0u64, 0u64);
        let mut memory = w.fresh_memory();
        GpuSim::new(DesignPoint::WarpedCompression.config())
            .run_observed(w.kernel(), w.launch(), &mut memory, &mut |e| {
                if e.synthetic {
                    return;
                }
                logical += WARP_REGISTER_BYTES as u64;
                bdi_b += codec.compress(&e.value).stored_len() as u64;
                full_b += explore_best_choice(&e.value)
                    .layout()
                    .map_or(WARP_REGISTER_BYTES, |l| l.compressed_len())
                    as u64;
                // FPC can expand; a real design would store raw instead.
                fpc_b += bdi::fpc::compressed_len(&e.value).min(WARP_REGISTER_BYTES) as u64;
            })
            .unwrap_or_else(|e| panic!("codec study run failed on {}: {e}", w.name()));
        let ratio = |stored: u64| logical as f64 / stored.max(1) as f64;
        rows.push(vec![
            w.name().to_string(),
            fmt(ratio(bdi_b)),
            fmt(ratio(full_b)),
            fmt(ratio(fpc_b)),
        ]);
        for (t, v) in totals.iter_mut().zip([logical, bdi_b, full_b, fpc_b]) {
            *t += v;
        }
    }
    rows.push(vec![
        "average".into(),
        fmt(totals[0] as f64 / totals[1].max(1) as f64),
        fmt(totals[0] as f64 / totals[2].max(1) as f64),
        fmt(totals[0] as f64 / totals[3].max(1) as f64),
    ]);
    FigureTable::new(
        "codec-study",
        "Compression-algorithm exploration: dynamic BDI vs full BDI vs FPC",
        vec![
            "bench".into(),
            "BDI (warped)".into(),
            "BDI (full)".into(),
            "FPC".into(),
        ],
        rows,
    )
}

/// Every figure/table in order, for `figures all`.
pub fn all(campaign: &mut Campaign) -> Vec<FigureTable> {
    // Simulate every design point the figures below consult up front, so
    // the points fan out across threads; each figure call below is then a
    // cache hit. The output is byte-identical to the lazy serial order.
    campaign.prefetch(&[
        DesignPoint::Baseline,
        DesignPoint::WarpedCompression,
        DesignPoint::DecompressMergeRecompress,
        DesignPoint::Only(FixedChoice::Delta0),
        DesignPoint::Only(FixedChoice::Delta1),
        DesignPoint::Only(FixedChoice::Delta2),
        DesignPoint::BaselineLrr,
        DesignPoint::WarpedCompressionLrr,
        DesignPoint::Latency {
            compression: 2,
            decompression: 1,
        },
        DesignPoint::Latency {
            compression: 4,
            decompression: 1,
        },
        DesignPoint::Latency {
            compression: 8,
            decompression: 1,
        },
        DesignPoint::Latency {
            compression: 2,
            decompression: 2,
        },
        DesignPoint::Latency {
            compression: 2,
            decompression: 4,
        },
        DesignPoint::Latency {
            compression: 2,
            decompression: 8,
        },
    ]);
    vec![
        table1(),
        table2(),
        table3(),
        fig2(campaign),
        fig3(campaign),
        fig5(campaign),
        fig8(campaign),
        fig9(campaign),
        fig10(campaign),
        fig11(campaign),
        fig12(campaign),
        fig13(campaign),
        fig14(campaign),
        fig15(campaign),
        fig16(campaign),
        fig17(campaign),
        fig18(campaign),
        fig19(campaign),
        fig20(campaign),
        fig21(campaign),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new(vec![
            gpu_workloads::by_name("lib").unwrap(),
            gpu_workloads::by_name("pathfinder").unwrap(),
        ])
    }

    #[test]
    fn table1_matches_bdi_table() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.rows[3], vec!["4", "1", "35", "3", "Y"]);
    }

    #[test]
    fn static_tables_have_expected_entries() {
        assert!(table2()
            .rows
            .iter()
            .any(|r| r[0] == "Register banks" && r[1] == "32"));
        assert!(table3()
            .rows
            .iter()
            .any(|r| r[0].contains("Wire energy") && r[1] == "9.6"));
    }

    #[test]
    fn fig8_shows_high_nondiv_ratio_for_lib() {
        let mut c = tiny_campaign();
        let t = fig8(&mut c);
        let lib = t.rows.iter().find(|r| r[0] == "lib").unwrap();
        let ratio: f64 = lib[1].parse().unwrap();
        assert!(ratio > 5.0, "lib ratio {ratio}");
    }

    #[test]
    fn fig9_reports_positive_average_saving() {
        let mut c = tiny_campaign();
        let t = fig9(&mut c);
        let avg = t.rows.last().unwrap();
        let saving: f64 = avg.last().unwrap().trim_end_matches('%').parse().unwrap();
        assert!(saving > 0.0, "saving {saving}%");
    }

    #[test]
    fn fig10_gating_rises_within_cluster() {
        let mut c = tiny_campaign();
        let t = fig10(&mut c);
        assert_eq!(t.rows.len(), 32);
        let frac = |i: usize| -> f64 { t.rows[i][1].trim_end_matches('%').parse().unwrap() };
        // Bank 0 of cluster 0 holds every register's first chunk: gated
        // far less than bank 7.
        assert!(frac(7) > frac(0), "bank7 {} vs bank0 {}", frac(7), frac(0));
    }

    #[test]
    fn fig13_and_latency_figures_are_consistent() {
        let mut c = tiny_campaign();
        let f13 = fig13(&mut c);
        let f20 = fig20(&mut c);
        // fig20's 2-cycle column equals fig13 (2 cycles is the default).
        assert_eq!(f13.rows.last().unwrap()[1], f20.rows.last().unwrap()[1]);
        let f21 = fig21(&mut c);
        assert_eq!(f21.headers.len(), 4);
    }

    #[test]
    fn fig15_dynamic_beats_every_single_choice() {
        let mut c = tiny_campaign();
        let t = fig15(&mut c);
        let avg = t.rows.last().unwrap();
        let parse = |s: &String| -> f64 { s.parse().unwrap() };
        let warped = parse(&avg[4]);
        for (i, cell) in avg.iter().enumerate().take(4).skip(1) {
            assert!(
                warped >= parse(cell) - 1e-9,
                "dynamic should dominate column {i}"
            );
        }
    }

    #[test]
    fn leakage_ablation_orders_policies() {
        let mut c = tiny_campaign();
        let t = ablation_leakage(&mut c);
        let avg = t.rows.last().unwrap();
        let gate_e: f64 = avg[1].parse().unwrap();
        let drowsy_e: f64 = avg[2].parse().unwrap();
        // Both save energy; drowsy saves less leakage so its energy is
        // at least as high as gating's.
        assert!(gate_e < 1.0 && drowsy_e < 1.0);
        assert!(
            drowsy_e >= gate_e - 1e-9,
            "drowsy {drowsy_e} vs gate {gate_e}"
        );
    }

    #[test]
    fn codec_study_ranks_full_bdi_above_restricted() {
        let mut c = tiny_campaign();
        let t = codec_study(&mut c);
        let avg = t.rows.last().unwrap();
        let warped: f64 = avg[1].parse().unwrap();
        let full: f64 = avg[2].parse().unwrap();
        let fpc: f64 = avg[3].parse().unwrap();
        assert!(
            full >= warped - 1e-9,
            "full BDI {full} must dominate restricted {warped}"
        );
        assert!(fpc > 1.0, "FPC should compress the similarity-heavy suite");
    }

    #[test]
    fn all_produces_twenty_tables() {
        let mut c = Campaign::new(vec![gpu_workloads::by_name("lib").unwrap()]);
        let tables = all(&mut c);
        assert_eq!(tables.len(), 20);
        let mut ids: Vec<&str> = tables.iter().map(|t| t.id.as_str()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }
}
