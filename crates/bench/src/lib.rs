//! Figure/table regeneration for the Warped-Compression reproduction.
//!
//! Each `fig*`/`table*` function returns a [`FigureTable`] — the same
//! rows/series the paper's figure reports — computed from simulation
//! runs managed by a memoising [`Campaign`]. The `figures` binary renders
//! them to stdout and CSV.
//!
//! # Example
//!
//! ```no_run
//! use wc_bench::{Campaign, figures};
//!
//! let mut campaign = Campaign::full_suite();
//! let fig8 = figures::fig8(&mut campaign);
//! println!("{}", fig8.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis_json;
mod campaign;
mod checkpoint;
#[cfg(feature = "faults")]
pub mod fault_json;
pub mod figures;
#[cfg(feature = "fuzz")]
pub mod fuzz_json;
pub mod jsonfmt;
pub mod mem_json;
pub mod perf_json;
pub mod schedule_json;
mod table;

pub use campaign::{Campaign, DEFAULT_SEED};
pub use checkpoint::CheckpointStore;
pub use table::FigureTable;
