//! Records the before/after numbers for the single-pass BDI hot path and
//! the parallel campaign runner into `results/BENCH_pr1.json`.
//!
//! Two measurements:
//!
//! * **Codec throughput** (registers/second): the single-pass
//!   `BdiCodec::compress` vs the retained multi-pass
//!   `BdiCodec::compress_reference` oracle, on the three reference
//!   patterns (splat, tid-affine, random).
//! * **Campaign wall-clock**: a 3-workload × 3-design-point mini campaign
//!   run serially (direct per-workload loop) vs through the parallel
//!   `Campaign::prefetch` path, asserting the outputs are identical.
//!
//! Set `RAYON_NUM_THREADS` to control the parallel path's thread count.

use std::fs;
use std::hint::black_box;
use std::time::Instant;

use bdi::{BdiCodec, ChoiceSet, CompressedRegister, WarpRegister};
use gpu_workloads::Workload;
use warped_compression::{run_workload, DesignPoint};
use wc_bench::Campaign;

/// Registers compressed per second by `f`, timed over ~0.2 s.
fn regs_per_sec(reg: &WarpRegister, f: impl Fn(&WarpRegister) -> CompressedRegister) -> f64 {
    // Calibrate a batch size, then time whole batches.
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f(black_box(reg)));
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 {
            return batch as f64 / elapsed.as_secs_f64();
        }
        batch *= 4;
    }
}

fn mini_workloads() -> Vec<Workload> {
    ["lib", "aes", "pathfinder"]
        .iter()
        .map(|n| gpu_workloads::by_name(n).expect("suite workload exists"))
        .collect()
}

const MINI_POINTS: [DesignPoint; 3] = [
    DesignPoint::Baseline,
    DesignPoint::WarpedCompression,
    DesignPoint::DecompressMergeRecompress,
];

fn json_f(v: f64) -> String {
    format!("{v:.1}")
}

fn main() {
    let codec = BdiCodec::new(ChoiceSet::warped_compression());
    let patterns = [
        ("splat", WarpRegister::splat(0xABCD)),
        ("tid-affine", WarpRegister::from_fn(|t| 5000 + t as u32)),
        (
            "random",
            WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x9E37_79B9)),
        ),
    ];

    let mut codec_entries = Vec::new();
    for (name, reg) in &patterns {
        let single = regs_per_sec(reg, |r| codec.compress(r));
        let reference = regs_per_sec(reg, |r| codec.compress_reference(r));
        let speedup = single / reference;
        eprintln!(
            "codec/{name}: single-pass {single:.0} regs/s, reference {reference:.0} regs/s \
             ({speedup:.2}x)"
        );
        codec_entries.push(format!(
            "    \"{name}\": {{\"single_pass_regs_per_sec\": {}, \"reference_regs_per_sec\": {}, \
             \"speedup\": {:.2}}}",
            json_f(single),
            json_f(reference),
            speedup
        ));
    }

    // Serial: one simulation at a time, no campaign machinery.
    let workloads = mini_workloads();
    let serial_start = Instant::now();
    let mut serial_cycles = Vec::new();
    for point in MINI_POINTS {
        let cfg = point.config();
        for w in &workloads {
            let out = run_workload(&cfg, w).expect("mini campaign workload runs");
            serial_cycles.push(out.stats.cycles);
        }
    }
    let serial_s = serial_start.elapsed().as_secs_f64();

    // Parallel: the campaign prefetch path (design points × workloads).
    let parallel_start = Instant::now();
    let mut campaign = Campaign::new(mini_workloads());
    campaign.prefetch(&MINI_POINTS);
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    let parallel_cycles: Vec<u64> = MINI_POINTS
        .iter()
        .flat_map(|&p| {
            campaign
                .results(p)
                .iter()
                .map(|r| r.stats.cycles)
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(
        serial_cycles, parallel_cycles,
        "parallel campaign must match serial results"
    );
    eprintln!(
        "campaign (3 workloads x 3 design points): serial {serial_s:.3}s, parallel {parallel_s:.3}s \
         on {} thread(s)",
        rayon::current_num_threads()
    );

    let json = format!
    (
        "{{\n  \"codec\": {{\n{}\n  }},\n  \"campaign\": {{\n    \"workloads\": [\"lib\", \"aes\", \"pathfinder\"],\n    \"design_points\": [\"baseline\", \"warped-compression\", \"decompress-merge-recompress\"],\n    \"serial_seconds\": {:.3},\n    \"parallel_seconds\": {:.3},\n    \"speedup\": {:.2},\n    \"threads\": {},\n    \"results_identical\": true\n  }}\n}}\n",
        codec_entries.join(",\n"),
        serial_s,
        parallel_s,
        serial_s / parallel_s,
        rayon::current_num_threads()
    );
    fs::create_dir_all("results").expect("create results dir");
    fs::write("results/BENCH_pr1.json", &json).expect("write results/BENCH_pr1.json");
    println!("{json}");
}
