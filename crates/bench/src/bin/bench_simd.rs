//! Records the SIMD-vs-scalar codec numbers into
//! `results/BENCH_simd.json`, continuing the perf trajectory started by
//! `results/BENCH_pr1.json`.
//!
//! For each input pattern and each hot path (`compress`, `decompress`,
//! `classify`, the explorer fold and the FPC scan) this measures
//! registers/second on the dispatched SIMD tier and on the pinned
//! scalar tier, plus the retained multi-pass `compress_reference`
//! oracle — so the document carries both the *SIMD vs scalar* ratio
//! (this PR) and the *SIMD vs reference* ratio (cumulative since PR 1).
//!
//! The JSON shape is deterministic (rates are measured, so the values
//! move run to run, but keys, ordering and formatting are fixed by
//! `wc_bench::jsonfmt`). `WC_BENCH_FAST=1` shortens the timing windows
//! for CI smoke runs.

use std::fs;
use std::hint::black_box;
use std::time::Instant;

use bdi::{BdiCodec, ChoiceSet, SimdTier, WarpRegister};
use wc_bench::jsonfmt::{block_list, inline, JsonObject};

/// Operations per second of `f`, timed over a calibrated window.
fn ops_per_sec(window_ms: u128, mut f: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= window_ms {
            return batch as f64 / elapsed.as_secs_f64();
        }
        batch *= 4;
    }
}

fn patterns() -> Vec<(&'static str, WarpRegister)> {
    vec![
        ("uniform", WarpRegister::splat(0xABCD)),
        ("lane-affine", WarpRegister::from_fn(|t| 5000 + t as u32)),
        ("narrow-range", WarpRegister::from_fn(|t| 1000 * t as u32)),
        (
            "incompressible",
            WarpRegister::from_fn(|t| (t as u32 + 1).wrapping_mul(0x9E37_79B9)),
        ),
    ]
}

fn rate(v: f64) -> String {
    format!("{v:.1}")
}

fn ratio(num: f64, den: f64) -> String {
    format!("{:.2}", num / den)
}

fn main() {
    let fast = std::env::var_os("WC_BENCH_FAST").is_some();
    let window_ms: u128 = if fast { 5 } else { 150 };

    let active = SimdTier::active();
    let simd = BdiCodec::new(ChoiceSet::warped_compression());
    let scalar = BdiCodec::with_tier(ChoiceSet::warped_compression(), SimdTier::Scalar)
        .expect("scalar tier is always available");
    eprintln!("dispatched tier: {active}");

    let mut entries = Vec::new();
    for (name, reg) in &patterns() {
        // The compressed bytes are identical across tiers by construction
        // (and pinned by the test suite); assert anyway before timing.
        let compressed = simd.compress(reg);
        assert_eq!(compressed, scalar.compress(reg), "tiers must be bit-exact");
        assert_eq!(compressed, simd.compress_reference(reg), "oracle pin");

        let c_simd = ops_per_sec(window_ms, || {
            black_box(simd.compress(black_box(reg)));
        });
        let c_scalar = ops_per_sec(window_ms, || {
            black_box(scalar.compress(black_box(reg)));
        });
        let c_reference = ops_per_sec(window_ms, || {
            black_box(simd.compress_reference(black_box(reg)));
        });
        let d_simd = ops_per_sec(window_ms, || {
            black_box(simd.decompress(black_box(&compressed)));
        });
        let d_scalar = ops_per_sec(window_ms, || {
            black_box(scalar.decompress(black_box(&compressed)));
        });
        let k_simd = ops_per_sec(window_ms, || {
            black_box(simd.classify(black_box(reg)));
        });
        let k_scalar = ops_per_sec(window_ms, || {
            black_box(scalar.classify(black_box(reg)));
        });
        eprintln!(
            "{name}: compress {active} {c_simd:.0}/s vs scalar {c_scalar:.0}/s \
             ({:.2}x), vs reference {:.2}x; classify {:.2}x",
            c_simd / c_scalar,
            c_simd / c_reference,
            k_simd / k_scalar,
        );
        let obj = JsonObject::new(4)
            .string("pattern", name)
            .string("class", compressed.class().name())
            .field(
                "compress",
                inline(&[
                    ("simd_regs_per_sec", rate(c_simd)),
                    ("scalar_regs_per_sec", rate(c_scalar)),
                    ("reference_regs_per_sec", rate(c_reference)),
                    ("speedup_vs_scalar", ratio(c_simd, c_scalar)),
                    ("speedup_vs_reference", ratio(c_simd, c_reference)),
                ]),
            )
            .field(
                "decompress",
                inline(&[
                    ("simd_regs_per_sec", rate(d_simd)),
                    ("scalar_regs_per_sec", rate(d_scalar)),
                    ("speedup_vs_scalar", ratio(d_simd, d_scalar)),
                ]),
            )
            .field(
                "classify",
                inline(&[
                    ("simd_regs_per_sec", rate(k_simd)),
                    ("scalar_regs_per_sec", rate(k_scalar)),
                    ("speedup_vs_scalar", ratio(k_simd, k_scalar)),
                ]),
            );
        entries.push(obj.render_fragment());
    }

    // The explorer and FPC scan ride the same dispatch; record them on
    // one representative compressible pattern.
    let reg = WarpRegister::from_fn(|t| 5000 + t as u32);
    let explorer = ops_per_sec(window_ms, || {
        black_box(bdi::explore_best_choice(black_box(&reg)));
    });
    let fpc = ops_per_sec(window_ms, || {
        black_box(bdi::fpc::compressed_bits(black_box(reg.as_lanes())));
    });

    let doc = JsonObject::new(0)
        .string("bench", "simd-codec")
        .string("dispatched_tier", active.name())
        .display("avx2_available", SimdTier::Avx2.is_available())
        .display("neon_available", SimdTier::Neon.is_available())
        .field("patterns", block_list(2, &entries))
        .field("explorer", inline(&[("regs_per_sec", rate(explorer))]))
        .field("fpc_scan", inline(&[("regs_per_sec", rate(fpc))]))
        .render_document();
    fs::create_dir_all("results").expect("create results dir");
    fs::write("results/BENCH_simd.json", &doc).expect("write results/BENCH_simd.json");
    println!("{doc}");
}
