//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [all | table1 | table2 | table3 | fig2 | fig3 | fig5 | fig8..fig21] [--csv DIR]
//! ```
//!
//! With no arguments, regenerates everything and prints markdown to
//! stdout. `--csv DIR` additionally writes one CSV per figure into DIR.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use wc_bench::{figures, Campaign, FigureTable};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut csv_dir: Option<PathBuf> = None;
    let mut selections: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: figures [all|table1|table2|table3|fig2|fig3|fig5|fig8..fig21]... [--csv DIR]");
                return ExitCode::SUCCESS;
            }
            other => selections.push(other.to_string()),
        }
    }
    if selections.is_empty() {
        selections.push("all".into());
    }

    let mut campaign = Campaign::full_suite();
    let mut tables: Vec<FigureTable> = Vec::new();
    for sel in &selections {
        match sel.as_str() {
            "all" => tables.extend(figures::all(&mut campaign)),
            "table1" => tables.push(figures::table1()),
            "table2" => tables.push(figures::table2()),
            "table3" => tables.push(figures::table3()),
            "fig2" => tables.push(figures::fig2(&mut campaign)),
            "fig3" => tables.push(figures::fig3(&mut campaign)),
            "fig5" => tables.push(figures::fig5(&mut campaign)),
            "fig8" => tables.push(figures::fig8(&mut campaign)),
            "fig9" => tables.push(figures::fig9(&mut campaign)),
            "fig10" => tables.push(figures::fig10(&mut campaign)),
            "fig11" => tables.push(figures::fig11(&mut campaign)),
            "fig12" => tables.push(figures::fig12(&mut campaign)),
            "fig13" => tables.push(figures::fig13(&mut campaign)),
            "fig14" => tables.push(figures::fig14(&mut campaign)),
            "fig15" => tables.push(figures::fig15(&mut campaign)),
            "fig16" => tables.push(figures::fig16(&mut campaign)),
            "fig17" => tables.push(figures::fig17(&mut campaign)),
            "fig18" => tables.push(figures::fig18(&mut campaign)),
            "fig19" => tables.push(figures::fig19(&mut campaign)),
            "fig20" => tables.push(figures::fig20(&mut campaign)),
            "fig21" => tables.push(figures::fig21(&mut campaign)),
            "ablation" => tables.push(figures::ablation_leakage(&mut campaign)),
            "codec-study" => tables.push(figures::codec_study(&mut campaign)),
            unknown => {
                eprintln!("unknown selection: {unknown} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    for t in &tables {
        println!("{}", t.to_markdown());
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for t in &tables {
            let path = dir.join(format!("{}.csv", t.id));
            if let Err(e) = fs::write(&path, t.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!("wrote {} CSV files", tables.len());
    }
    ExitCode::SUCCESS
}
