//! String escaping shared by the hand-rolled deterministic JSON writers.

pub(crate) fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\r' => "\\r".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}
