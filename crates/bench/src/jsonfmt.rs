//! Deterministic JSON building shared by the hand-rolled report
//! writers.
//!
//! The vendored `serde` is a no-op marker shim, so every
//! machine-readable report (`analyze --json`, `BENCH_predict.json`,
//! `BENCH_faults.json`, `BENCH_perf.json`) is rendered by hand. This
//! module is the single copy of that discipline — insertion-ordered
//! keys, `": "` separators, two-space indentation, floats through
//! Rust's shortest-round-trip formatter — so a document is
//! byte-identical across runs and resumed checkpoint fragments can be
//! spliced in verbatim. Public so the workspace's report-writing
//! binaries (e.g. `bench_simd`) share it too.

use std::fmt::Display;

/// Escapes a string for embedding in a JSON string literal.
pub fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\r' => "\\r".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A quoted, escaped JSON string literal.
pub fn quoted(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// `Some(v)` through `Display`, `None` as `null`.
pub fn opt_display<D: Display>(v: Option<D>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

/// A single-line object: `{"k": v, "k2": v2}`. Values arrive already
/// rendered (via [`quoted`], `to_string`, [`inline_list`], …).
pub fn inline(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// A single-line array: `[a, b, c]`.
pub fn inline_list<D: Display>(items: impl IntoIterator<Item = D>) -> String {
    let body: Vec<String> = items.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", body.join(", "))
}

/// A multi-line array whose items are already fully rendered, each
/// carrying its own leading indentation; `indent` places the closing
/// bracket. An empty list renders as `[\n<indent>]`, matching the
/// writers' historical shape.
pub fn block_list(indent: usize, items: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str(item);
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
    out.push_str(&" ".repeat(indent));
    out.push(']');
    out
}

/// A multi-line object builder: fields render in insertion order, one
/// per line at `indent + 2`, the braces at `indent`. Values arrive
/// already rendered, so objects, arrays and scalars nest freely.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    indent: usize,
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object whose braces sit at `indent`.
    pub fn new(indent: usize) -> Self {
        JsonObject {
            indent,
            fields: Vec::new(),
        }
    }

    /// The indentation of nested block values (fields sit here).
    pub fn inner_indent(&self) -> usize {
        self.indent + 2
    }

    /// Appends a field with an already-rendered value.
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends a string field (escaped and quoted).
    pub fn string(self, key: &str, value: &str) -> Self {
        let v = quoted(value);
        self.field(key, v)
    }

    /// Appends a field rendered through `Display` (numbers, bools).
    pub fn display(self, key: &str, value: impl Display) -> Self {
        let v = value.to_string();
        self.field(key, v)
    }

    /// Renders the object, opening brace unindented (for use as a
    /// field value; the line it lands on supplies the indentation).
    pub fn render(&self) -> String {
        let pad = " ".repeat(self.inner_indent());
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str(&format!("{pad}\"{k}\": {v}"));
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&" ".repeat(self.indent));
        out.push('}');
        out
    }

    /// Renders as a standalone fragment: leading indentation included,
    /// so the result can be an item of a [`block_list`].
    pub fn render_fragment(&self) -> String {
        format!("{}{}", " ".repeat(self.indent), self.render())
    }

    /// Renders as a whole document: no leading indent, trailing
    /// newline.
    pub fn render_document(&self) -> String {
        let mut out = self.render();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(quoted("hi"), "\"hi\"");
    }

    #[test]
    fn inline_forms_render_on_one_line() {
        assert_eq!(
            inline(&[("a", "1".into()), ("b", quoted("x"))]),
            "{\"a\": 1, \"b\": \"x\"}"
        );
        assert_eq!(inline_list([1, 2, 3]), "[1, 2, 3]");
        assert_eq!(inline_list(Vec::<u64>::new()), "[]");
    }

    #[test]
    fn block_object_nests_and_indents() {
        let obj = JsonObject::new(2)
            .display("n", 7)
            .string("s", "v")
            .field("list", block_list(4, &["      {\"x\": 1}".into()]));
        assert_eq!(
            obj.render_fragment(),
            "  {\n    \"n\": 7,\n    \"s\": \"v\",\n    \"list\": [\n      {\"x\": 1}\n    ]\n  }"
        );
    }

    #[test]
    fn empty_block_list_keeps_the_bracket_shape() {
        assert_eq!(block_list(6, &[]), "[\n      ]");
    }

    #[test]
    fn document_rendering_ends_with_newline() {
        let doc = JsonObject::new(0).display("v", 1).render_document();
        assert_eq!(doc, "{\n  \"v\": 1\n}\n");
    }
}
