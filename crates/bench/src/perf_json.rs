//! Deterministic JSON rendering of static-vs-measured performance
//! bounds (`wcsim perf`), on the shared [`jsonfmt`](crate::jsonfmt)
//! builder.
//!
//! `results/BENCH_perf.json` is the CI artifact of the perfbound
//! soundness gate: per kernel, the static cycle / bank-access / energy
//! floors next to the measured counters, the per-conflict-site stall
//! floors, and the per-kernel soundness verdict.

use warped_compression::PerfReport;

use crate::jsonfmt::{block_list, inline, JsonObject};

/// One kernel's static-vs-measured performance fragment.
pub fn perf_record_json(r: &PerfReport) -> String {
    let conflicts: Vec<String> = r
        .conflict_checks
        .iter()
        .map(|c| {
            format!(
                "        {}",
                inline(&[
                    ("pc", c.pc.to_string()),
                    ("sources", c.sources.to_string()),
                    ("static_min_stalls", c.static_min_stalls.to_string()),
                    ("measured_stalls", c.measured_stalls.to_string()),
                    ("sound", c.is_sound().to_string()),
                ])
            )
        })
        .collect();
    JsonObject::new(4)
        .string("kernel", &r.kernel)
        .display("sound", r.is_sound())
        .display("static_cycles", r.comparison.static_cycles)
        .display("measured_cycles", r.comparison.measured_cycles)
        .display("cycle_tightness", r.comparison.cycle_tightness())
        .display("issue_bound", r.prediction.issue_bound)
        .display("chain_bound", r.prediction.chain_bound)
        .display("compressor_bound", r.prediction.compressor_bound)
        .display("min_instructions", r.prediction.min_instructions)
        .display("measured_instructions", r.measured_instructions)
        .display("static_bank_accesses", r.comparison.static_bank_accesses)
        .display(
            "measured_bank_accesses",
            r.comparison.measured_bank_accesses,
        )
        .display("access_tightness", r.comparison.access_tightness())
        .display("static_energy_pj", r.comparison.static_energy_pj)
        .display("measured_energy_pj", r.comparison.measured_energy_pj)
        .display("energy_tightness", r.comparison.energy_tightness())
        .display("exact_warps", r.prediction.exact_warps)
        .display("approx_warps", r.prediction.approx_warps)
        .field("conflicts", block_list(6, &conflicts))
        .render_fragment()
}

/// The whole `BENCH_perf.json` document.
pub fn perf_json(design: &str, reports: &[PerfReport]) -> String {
    let fragments: Vec<String> = reports.iter().map(perf_record_json).collect();
    JsonObject::new(0)
        .string("design", design)
        .display("sound", reports.iter().all(PerfReport::is_sound))
        .field("kernels", block_list(2, &fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::{perf_workload, DesignPoint};

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let render = || {
            let w = gpu_workloads::by_name("lib").unwrap();
            let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
            perf_json("warped-compression", &[r])
        };
        let a = render();
        assert_eq!(a, render(), "perf JSON must be byte-identical");
        assert!(a.contains("\"design\": \"warped-compression\""));
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"sound\": true"));
        assert!(a.contains("\"static_cycles\""));
        assert!(a.contains("\"static_min_stalls\""));
    }
}
