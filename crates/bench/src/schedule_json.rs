//! Deterministic JSON rendering of static-schedule-vs-dynamic reports
//! (`wcsim schedule`), on the shared [`jsonfmt`](crate::jsonfmt)
//! builder.
//!
//! `results/BENCH_schedule.json` is the CI artifact of the scheduling
//! soundness gate: per kernel, whether the scheduler closed it
//! statically or fell back (and why), the scheduled makespan next to
//! the perfbound floor and the dynamic runtime with its slack budget,
//! the energy comparison, and the per-kernel soundness verdict.

use warped_compression::{ScheduleMode, ScheduleReport};

use crate::jsonfmt::{block_list, JsonObject};

/// One kernel's schedule-vs-dynamic fragment.
pub fn schedule_record_json(r: &ScheduleReport) -> String {
    let (mode, reason) = match &r.mode {
        ScheduleMode::Static => ("static", String::new()),
        ScheduleMode::DynamicFallback { reason } => ("dynamic-fallback", reason.clone()),
    };
    JsonObject::new(4)
        .string("kernel", &r.kernel)
        .display("sound", r.is_sound())
        .string("mode", mode)
        .string("fallback_reason", &reason)
        .display("static_floor_cycles", r.static_floor_cycles)
        .display("scheduled_cycles", r.scheduled_cycles)
        .display("dynamic_cycles", r.dynamic_cycles)
        .display("slack_cycles", r.slack_cycles)
        .display("registers_match", r.registers_match)
        .display("memory_matches", r.memory_matches)
        .display("scheduled_instructions", r.scheduled_instructions)
        .display("dynamic_instructions", r.dynamic_instructions)
        .display("cycle_ratio", r.comparison.cycle_ratio())
        .display("scheduled_energy_pj", r.comparison.scheduled_energy_pj)
        .display("dynamic_energy_pj", r.comparison.dynamic_energy_pj)
        .display("energy_savings", r.comparison.energy_savings())
        .display(
            "scheduled_compressor_activations",
            r.comparison.scheduled_compressor_activations,
        )
        .display(
            "dynamic_compressor_activations",
            r.comparison.dynamic_compressor_activations,
        )
        .display(
            "scheduled_decompressor_activations",
            r.comparison.scheduled_decompressor_activations,
        )
        .display(
            "dynamic_decompressor_activations",
            r.comparison.dynamic_decompressor_activations,
        )
        .render_fragment()
}

/// The whole `BENCH_schedule.json` document.
pub fn schedule_json(design: &str, reports: &[ScheduleReport]) -> String {
    let fragments: Vec<String> = reports.iter().map(schedule_record_json).collect();
    let static_kernels = reports.iter().filter(|r| r.mode.is_static()).count();
    JsonObject::new(0)
        .string("design", design)
        .display("sound", reports.iter().all(ScheduleReport::is_sound))
        .display("static_kernels", static_kernels)
        .display("fallback_kernels", reports.len() - static_kernels)
        .field("kernels", block_list(2, &fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::{schedule_workload, DesignPoint};

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let render = || {
            let lib = gpu_workloads::by_name("lib").unwrap();
            let bfs = gpu_workloads::by_name("bfs").unwrap();
            let rs = [
                schedule_workload(&lib, DesignPoint::WarpedCompression).unwrap(),
                schedule_workload(&bfs, DesignPoint::WarpedCompression).unwrap(),
            ];
            schedule_json("warped-compression", &rs)
        };
        let a = render();
        assert_eq!(a, render(), "schedule JSON must be byte-identical");
        assert!(a.contains("\"design\": \"warped-compression\""));
        assert!(a.contains("\"mode\": \"static\""));
        assert!(a.contains("\"mode\": \"dynamic-fallback\""));
        assert!(a.contains("\"sound\": true"));
        assert!(a.contains("\"static_kernels\": 1"));
        assert!(a.contains("\"fallback_kernels\": 1"));
        assert!(a.contains("\"slack_cycles\""));
    }
}
