//! Deterministic JSON rendering of static-analysis and
//! compressibility-prediction reports, on the shared
//! [`jsonfmt`](crate::jsonfmt) builder.
//!
//! `wcsim analyze --json` and `wcsim predict` write machine-readable
//! reports (`results/BENCH_predict.json`) that CI archives and diffs
//! across runs: fixed key order, no maps, floats through Rust's
//! shortest-round-trip formatter.

use simt_analysis::KernelAnalysis;
use warped_compression::PredictReport;

use crate::jsonfmt::{block_list, inline, inline_list, opt_display, quoted, JsonObject};

/// One kernel's analysis fragment: lint findings, liveness summary and
/// the static compressibility prediction.
pub fn analysis_record_json(name: &str, a: &KernelAnalysis) -> String {
    let diags: Vec<String> = a
        .report
        .diagnostics
        .iter()
        .map(|d| {
            format!(
                "        {}",
                inline(&[
                    ("kind", quoted(d.kind.name())),
                    ("severity", quoted(&d.severity.to_string())),
                    ("pc", opt_display(d.pc.map(|p| p as u64))),
                    ("reg", opt_display(d.reg.map(u64::from))),
                    ("message", quoted(&d.message)),
                ])
            )
        })
        .collect();
    let liveness = match &a.liveness {
        Some(l) => inline(&[
            ("num_regs", l.num_regs.to_string()),
            ("max_live", l.max_live.to_string()),
            ("avg_live", l.avg_live.to_string()),
            ("histogram", inline_list(l.histogram.iter())),
        ]),
        None => "null".into(),
    };
    let prediction = match &a.prediction {
        Some(p) => {
            let sites: Vec<String> = p
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "          {}",
                        inline(&[
                            ("pc", s.pc.to_string()),
                            ("reg", s.reg.to_string()),
                            ("class", quoted(s.class.name())),
                            ("banks", s.class.banks().to_string()),
                            ("divergent_region", s.divergent_region.to_string()),
                            ("value", quoted(&s.value.to_string())),
                        ])
                    )
                })
                .collect();
            let branches: Vec<String> = p
                .branches
                .iter()
                .map(|b| {
                    format!(
                        "          {}",
                        inline(&[("pc", b.pc.to_string()), ("uniform", b.uniform.to_string()),])
                    )
                })
                .collect();
            JsonObject::new(6)
                .field("sites", block_list(8, &sites))
                .field("branches", block_list(8, &branches))
                .display("informative_fraction", p.informative_fraction())
                .display("compressed_fraction", p.compressed_fraction())
                .display("min_gateable_banks", p.min_gateable_banks())
                .render()
        }
        None => "null".into(),
    };
    JsonObject::new(4)
        .string("kernel", name)
        .field("diagnostics", block_list(6, &diags))
        .field("liveness", liveness)
        .field("prediction", prediction)
        .render_fragment()
}

/// The whole `analyze --json` document.
pub fn analysis_json(entries: &[(String, KernelAnalysis)]) -> String {
    let fragments: Vec<String> = entries
        .iter()
        .map(|(name, a)| analysis_record_json(name, a))
        .collect();
    JsonObject::new(0)
        .field("kernels", block_list(2, &fragments))
        .render_document()
}

/// One kernel's static-vs-dynamic validation fragment.
pub fn predict_record_json(r: &PredictReport) -> String {
    let sites: Vec<String> = r
        .sites
        .iter()
        .map(|s| {
            format!(
                "        {}",
                inline(&[
                    ("pc", s.pc.to_string()),
                    ("reg", s.reg.to_string()),
                    ("predicted", quoted(s.predicted.name())),
                    ("predicted_banks", s.predicted.banks().to_string()),
                    (
                        "measured",
                        opt_display(s.measured.map(|m| quoted(m.name())))
                    ),
                    ("measured_banks", opt_display(s.measured.map(|m| m.banks()))),
                    ("executions", s.executions.to_string()),
                    ("outcome", quoted(s.outcome.label())),
                ])
            )
        })
        .collect();
    JsonObject::new(4)
        .string("kernel", &r.kernel)
        .field("sites", block_list(6, &sites))
        .field(
            "outcomes",
            inline(&[
                ("exact", r.exact_count().to_string()),
                ("conservative", r.conservative_count().to_string()),
                ("unsound_miss", r.unsound_count().to_string()),
            ]),
        )
        .display("exact_fraction", r.exact_fraction())
        .display("informative_fraction", r.prediction.informative_fraction())
        .display(
            "static_gateable_banks_per_write",
            r.comparison.static_gateable_banks_per_write,
        )
        .display(
            "measured_gated_banks_per_write",
            r.comparison.measured_gated_banks_per_write,
        )
        .display("gating_headroom", r.comparison.gating_headroom())
        .display("sound", r.is_sound())
        .render_fragment()
}

/// The whole `BENCH_predict.json` document.
pub fn predict_json(reports: &[PredictReport]) -> String {
    let fragments: Vec<String> = reports.iter().map(predict_record_json).collect();
    JsonObject::new(0)
        .field("kernels", block_list(2, &fragments))
        .render_document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::predict_workload;

    #[test]
    fn analysis_rendering_is_deterministic() {
        let render = || {
            let entries: Vec<(String, KernelAnalysis)> = ["lib", "bfs"]
                .iter()
                .map(|n| {
                    let w = gpu_workloads::by_name(n).unwrap();
                    (n.to_string(), simt_analysis::analyze(w.kernel()))
                })
                .collect();
            analysis_json(&entries)
        };
        let a = render();
        assert_eq!(a, render(), "analysis JSON must be byte-identical");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"liveness\": {"));
        assert!(a.contains("\"prediction\": {"));
        assert!(a.contains("\"min_gateable_banks\""));
    }

    #[test]
    fn predict_rendering_is_deterministic_and_structured() {
        let render = || {
            let w = gpu_workloads::by_name("lib").unwrap();
            predict_json(&[predict_workload(&w).unwrap()])
        };
        let a = render();
        assert_eq!(a, render(), "predict JSON must be byte-identical");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"unsound_miss\": 0"));
        assert!(a.contains("\"sound\": true"));
        assert!(a.contains("\"outcome\": \"exact\""));
    }
}
