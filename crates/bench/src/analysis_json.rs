//! Hand-rolled, deterministic JSON rendering of static-analysis and
//! compressibility-prediction reports.
//!
//! `wcsim analyze --json` and `wcsim predict` write machine-readable
//! reports (`results/BENCH_predict.json`) that CI archives and diffs
//! across runs, so the rendering follows the same discipline as
//! [`crate::fault_json`]: fixed key order, no maps, floats through
//! Rust's shortest-round-trip formatter.

use simt_analysis::KernelAnalysis;
use warped_compression::PredictReport;

use crate::jsonfmt::esc;

/// One kernel's analysis fragment: lint findings, liveness summary and
/// the static compressibility prediction.
pub fn analysis_record_json(name: &str, a: &KernelAnalysis) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    out.push_str(&format!("      \"kernel\": \"{}\",\n", esc(name)));
    out.push_str("      \"diagnostics\": [\n");
    for (i, d) in a.report.diagnostics.iter().enumerate() {
        let comma = if i + 1 < a.report.diagnostics.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "        {{\"kind\": \"{}\", \"severity\": \"{}\", \"pc\": {}, \
             \"reg\": {}, \"message\": \"{}\"}}{comma}\n",
            d.kind.name(),
            d.severity,
            opt_num(d.pc.map(|p| p as u64)),
            opt_num(d.reg.map(u64::from)),
            esc(&d.message),
        ));
    }
    out.push_str("      ],\n");
    match &a.liveness {
        Some(l) => {
            let hist: Vec<String> = l.histogram.iter().map(|h| h.to_string()).collect();
            out.push_str(&format!(
                "      \"liveness\": {{\"num_regs\": {}, \"max_live\": {}, \
                 \"avg_live\": {}, \"histogram\": [{}]}},\n",
                l.num_regs,
                l.max_live,
                l.avg_live,
                hist.join(", "),
            ));
        }
        None => out.push_str("      \"liveness\": null,\n"),
    }
    match &a.prediction {
        Some(p) => {
            out.push_str("      \"prediction\": {\n");
            out.push_str("        \"sites\": [\n");
            for (i, s) in p.sites.iter().enumerate() {
                let comma = if i + 1 < p.sites.len() { "," } else { "" };
                out.push_str(&format!(
                    "          {{\"pc\": {}, \"reg\": {}, \"class\": \"{}\", \
                     \"banks\": {}, \"divergent_region\": {}, \"value\": \"{}\"}}{comma}\n",
                    s.pc,
                    s.reg,
                    s.class.name(),
                    s.class.banks(),
                    s.divergent_region,
                    esc(&s.value.to_string()),
                ));
            }
            out.push_str("        ],\n");
            out.push_str("        \"branches\": [\n");
            for (i, b) in p.branches.iter().enumerate() {
                let comma = if i + 1 < p.branches.len() { "," } else { "" };
                out.push_str(&format!(
                    "          {{\"pc\": {}, \"uniform\": {}}}{comma}\n",
                    b.pc, b.uniform
                ));
            }
            out.push_str("        ],\n");
            out.push_str(&format!(
                "        \"informative_fraction\": {},\n",
                p.informative_fraction()
            ));
            out.push_str(&format!(
                "        \"compressed_fraction\": {},\n",
                p.compressed_fraction()
            ));
            out.push_str(&format!(
                "        \"min_gateable_banks\": {}\n",
                p.min_gateable_banks()
            ));
            out.push_str("      }\n");
        }
        None => out.push_str("      \"prediction\": null\n"),
    }
    out.push_str("    }");
    out
}

/// The whole `analyze --json` document.
pub fn analysis_json(entries: &[(String, KernelAnalysis)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"kernels\": [\n");
    for (i, (name, a)) in entries.iter().enumerate() {
        out.push_str(&analysis_record_json(name, a));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One kernel's static-vs-dynamic validation fragment.
pub fn predict_record_json(r: &PredictReport) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    out.push_str(&format!("      \"kernel\": \"{}\",\n", esc(&r.kernel)));
    out.push_str("      \"sites\": [\n");
    for (i, s) in r.sites.iter().enumerate() {
        let comma = if i + 1 < r.sites.len() { "," } else { "" };
        let (measured, measured_banks) = match s.measured {
            Some(m) => (format!("\"{}\"", m.name()), m.banks().to_string()),
            None => ("null".into(), "null".into()),
        };
        out.push_str(&format!(
            "        {{\"pc\": {}, \"reg\": {}, \"predicted\": \"{}\", \
             \"predicted_banks\": {}, \"measured\": {measured}, \
             \"measured_banks\": {measured_banks}, \"executions\": {}, \
             \"outcome\": \"{}\"}}{comma}\n",
            s.pc,
            s.reg,
            s.predicted.name(),
            s.predicted.banks(),
            s.executions,
            s.outcome.label(),
        ));
    }
    out.push_str("      ],\n");
    out.push_str(&format!(
        "      \"outcomes\": {{\"exact\": {}, \"conservative\": {}, \
         \"unsound_miss\": {}}},\n",
        r.exact_count(),
        r.conservative_count(),
        r.unsound_count(),
    ));
    out.push_str(&format!(
        "      \"exact_fraction\": {},\n",
        r.exact_fraction()
    ));
    out.push_str(&format!(
        "      \"informative_fraction\": {},\n",
        r.prediction.informative_fraction()
    ));
    out.push_str(&format!(
        "      \"static_gateable_banks_per_write\": {},\n",
        r.comparison.static_gateable_banks_per_write
    ));
    out.push_str(&format!(
        "      \"measured_gated_banks_per_write\": {},\n",
        r.comparison.measured_gated_banks_per_write
    ));
    out.push_str(&format!(
        "      \"gating_headroom\": {},\n",
        r.comparison.gating_headroom()
    ));
    out.push_str(&format!("      \"sound\": {}\n", r.is_sound()));
    out.push_str("    }");
    out
}

/// The whole `BENCH_predict.json` document.
pub fn predict_json(reports: &[PredictReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&predict_record_json(r));
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn opt_num(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::predict_workload;

    #[test]
    fn analysis_rendering_is_deterministic() {
        let render = || {
            let entries: Vec<(String, KernelAnalysis)> = ["lib", "bfs"]
                .iter()
                .map(|n| {
                    let w = gpu_workloads::by_name(n).unwrap();
                    (n.to_string(), simt_analysis::analyze(w.kernel()))
                })
                .collect();
            analysis_json(&entries)
        };
        let a = render();
        assert_eq!(a, render(), "analysis JSON must be byte-identical");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"liveness\": {"));
        assert!(a.contains("\"prediction\": {"));
        assert!(a.contains("\"min_gateable_banks\""));
    }

    #[test]
    fn predict_rendering_is_deterministic_and_structured() {
        let render = || {
            let w = gpu_workloads::by_name("lib").unwrap();
            predict_json(&[predict_workload(&w).unwrap()])
        };
        let a = render();
        assert_eq!(a, render(), "predict JSON must be byte-identical");
        assert!(a.contains("\"kernel\": \"lib\""));
        assert!(a.contains("\"unsound_miss\": 0"));
        assert!(a.contains("\"sound\": true"));
        assert!(a.contains("\"outcome\": \"exact\""));
    }
}
