//! Model-based property testing of the register file: a random sequence
//! of allocate / write / read / free operations is mirrored into a plain
//! `HashMap` shadow model, and the physical structure's invariants are
//! checked after every step:
//!
//! * reads decompress to exactly the last written value,
//! * the per-bank valid-entry counts equal the sum of allocated register
//!   footprints mapped to that bank,
//! * the compressed census matches the shadow model's count.

use std::collections::HashMap;

use bdi::{BdiCodec, CompressedRegister, WarpRegister};
use gpu_regfile::{GatingMode, RegFileConfig, RegisterFile, WarpSlot, WriteError};
use proptest::prelude::*;

const NUM_REGS: usize = 8;
const SLOTS: usize = 16;

#[derive(Clone, Debug)]
enum Op {
    Allocate {
        slot: usize,
    },
    Free {
        slot: usize,
    },
    Write {
        slot: usize,
        reg: usize,
        value: RegValue,
    },
    Read {
        slot: usize,
        reg: usize,
    },
}

/// Register-value patterns spanning all compression classes.
#[derive(Clone, Copy, Debug)]
enum RegValue {
    Uniform(u32),
    Affine { base: u32, stride: u32 },
    Random(u32),
}

impl RegValue {
    fn materialise(self) -> WarpRegister {
        match self {
            RegValue::Uniform(v) => WarpRegister::splat(v),
            RegValue::Affine { base, stride } => {
                WarpRegister::from_fn(|t| base.wrapping_add(stride.wrapping_mul(t as u32)))
            }
            RegValue::Random(seed) => WarpRegister::from_fn(|t| {
                (seed ^ t as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .rotate_left(t as u32)
            }),
        }
    }
}

fn arb_value() -> impl Strategy<Value = RegValue> {
    prop_oneof![
        any::<u32>().prop_map(RegValue::Uniform),
        (any::<u32>(), 0u32..200).prop_map(|(base, stride)| RegValue::Affine { base, stride }),
        any::<u32>().prop_map(RegValue::Random),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SLOTS).prop_map(|slot| Op::Allocate { slot }),
        (0..SLOTS).prop_map(|slot| Op::Free { slot }),
        (0..SLOTS, 0..NUM_REGS, arb_value()).prop_map(|(slot, reg, value)| Op::Write {
            slot,
            reg,
            value
        }),
        (0..SLOTS, 0..NUM_REGS).prop_map(|(slot, reg)| Op::Read { slot, reg }),
    ]
}

/// Sum of footprints per physical bank according to the shadow model.
fn expected_valid(
    shadow: &HashMap<usize, Vec<CompressedRegister>>,
    cfg: &RegFileConfig,
) -> Vec<usize> {
    let mut valid = vec![0usize; cfg.num_banks];
    for (&slot, regs) in shadow {
        let cluster = slot % cfg.num_clusters();
        for r in regs {
            for b in 0..r.banks_required() {
                valid[cluster * cfg.banks_per_cluster + b] += 1;
            }
        }
    }
    valid
}

fn check_invariants(
    rf: &RegisterFile,
    shadow: &HashMap<usize, Vec<CompressedRegister>>,
    codec: &BdiCodec,
    cfg: &RegFileConfig,
) -> Result<(), TestCaseError> {
    // Bank valid-entry counts match the shadow model's footprints.
    let expected = expected_valid(shadow, cfg);
    for (b, &want) in expected.iter().enumerate() {
        prop_assert_eq!(rf.bank(b).valid_entries(), want, "bank {} valid entries", b);
    }
    // Census matches.
    let compressed: usize = shadow
        .values()
        .flatten()
        .filter(|r| r.is_compressed())
        .count();
    let total: usize = shadow.values().map(Vec::len).sum();
    prop_assert_eq!(rf.compressed_census(), (compressed, total));
    // Stored values decompress to the shadow values.
    for (&slot, regs) in shadow {
        for (reg, want) in regs.iter().enumerate() {
            let got = rf.peek(WarpSlot(slot), reg).expect("allocated");
            prop_assert_eq!(
                codec.decompress(got),
                codec.decompress(want),
                "slot {} r{}",
                slot,
                reg
            );
        }
    }
    Ok(())
}

fn run_model(ops: Vec<Op>, gating: GatingMode) -> Result<(), TestCaseError> {
    let cfg = RegFileConfig {
        gating,
        ..RegFileConfig::paper_baseline()
    };
    let mut rf = RegisterFile::new(cfg);
    let codec = BdiCodec::default();
    let mut shadow: HashMap<usize, Vec<CompressedRegister>> = HashMap::new();
    let mut now = 0u64;

    for op in ops {
        now += 1;
        match op {
            Op::Allocate { slot } => {
                let initial = codec.compress(&WarpRegister::ZERO);
                match rf.allocate_warp_with(WarpSlot(slot), NUM_REGS, &initial, now) {
                    Ok(()) => {
                        prop_assert!(!shadow.contains_key(&slot), "allocated an occupied slot");
                        shadow.insert(slot, vec![initial; NUM_REGS]);
                    }
                    Err(_) => {
                        prop_assert!(shadow.contains_key(&slot), "spurious allocation failure")
                    }
                }
            }
            Op::Free { slot } => {
                rf.free_warp(WarpSlot(slot), now);
                shadow.remove(&slot);
            }
            Op::Write { slot, reg, value } => {
                let compressed = codec.compress(&value.materialise());
                match rf.write(WarpSlot(slot), reg, compressed, now) {
                    Ok(banks) => {
                        prop_assert_eq!(banks, compressed.banks_required());
                        let regs = shadow
                            .get_mut(&slot)
                            .expect("write succeeded on allocated slot");
                        regs[reg] = compressed;
                    }
                    Err(WriteError::Unallocated) => {
                        prop_assert!(!shadow.contains_key(&slot));
                    }
                    Err(WriteError::NotReady { ready_at }) => {
                        // Retry after the wake-up completes; must succeed.
                        now = ready_at;
                        let banks = rf
                            .write(WarpSlot(slot), reg, compressed, now)
                            .expect("retry after wakeup succeeds");
                        prop_assert_eq!(banks, compressed.banks_required());
                        shadow.get_mut(&slot).expect("allocated")[reg] = compressed;
                    }
                }
            }
            Op::Read { slot, reg } => {
                if let Some(regs) = shadow.get(&slot) {
                    let got = rf.read(WarpSlot(slot), reg, now);
                    prop_assert_eq!(got.banks_accessed, regs[reg].banks_required());
                    prop_assert_eq!(codec.decompress(got.register), codec.decompress(&regs[reg]));
                }
            }
        }
        check_invariants(&rf, &shadow, &codec, &cfg)?;
    }
    // Final stats snapshot is internally consistent.
    let stats = rf.stats(now + 1);
    prop_assert_eq!(stats.num_banks(), cfg.num_banks);
    prop_assert!(stats.total_accesses() >= stats.total_writes());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_check_power_gating(ops in prop::collection::vec(arb_op(), 1..80)) {
        run_model(ops, GatingMode::PowerGate)?;
    }

    #[test]
    fn model_check_drowsy(ops in prop::collection::vec(arb_op(), 1..80)) {
        run_model(ops, GatingMode::Drowsy)?;
    }

    #[test]
    fn model_check_no_gating(ops in prop::collection::vec(arb_op(), 1..80)) {
        run_model(ops, GatingMode::Off)?;
    }
}
