//! Per-cycle bank-port arbitration.
//!
//! Each SRAM bank has one read port and one write port (§2.1). The bank
//! arbiter grants an operand-collector request only if *every* bank the
//! (possibly compressed) register occupies has a free port this cycle;
//! otherwise the request retries next cycle — that is the bank-conflict
//! stall the paper's operand collector exists to hide.

use std::ops::Range;

/// Tracks which bank ports are claimed in the current cycle.
///
/// # Example
///
/// ```
/// use gpu_regfile::BankPorts;
///
/// let mut ports = BankPorts::new(32);
/// assert!(ports.try_read(0..8));   // first operand: banks 0..8
/// assert!(!ports.try_read(0..1));  // conflicting operand must wait
/// assert!(ports.try_write(0..3));  // writes use the separate write port
/// ports.begin_cycle();
/// assert!(ports.try_read(0..1));   // next cycle, ports are free again
/// ```
#[derive(Clone, Debug)]
pub struct BankPorts {
    read_busy: Vec<bool>,
    write_busy: Vec<bool>,
}

impl BankPorts {
    /// Creates port state for `num_banks` banks, all free.
    pub fn new(num_banks: usize) -> Self {
        BankPorts {
            read_busy: vec![false; num_banks],
            write_busy: vec![false; num_banks],
        }
    }

    /// Releases all ports for a new cycle.
    pub fn begin_cycle(&mut self) {
        self.read_busy.fill(false);
        self.write_busy.fill(false);
    }

    /// Attempts to claim the read ports of `banks`; claims all of them
    /// and returns `true`, or claims none and returns `false`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the configured bank count.
    pub fn try_read(&mut self, banks: Range<usize>) -> bool {
        Self::try_claim(&mut self.read_busy, banks)
    }

    /// Attempts to claim the write ports of `banks` (all-or-nothing).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the configured bank count.
    pub fn try_write(&mut self, banks: Range<usize>) -> bool {
        Self::try_claim(&mut self.write_busy, banks)
    }

    fn try_claim(busy: &mut [bool], banks: Range<usize>) -> bool {
        assert!(
            banks.end <= busy.len(),
            "bank range {banks:?} out of bounds"
        );
        if busy[banks.clone()].iter().any(|&b| b) {
            return false;
        }
        busy[banks].fill(true);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_or_nothing_claims() {
        let mut p = BankPorts::new(8);
        assert!(p.try_read(2..5));
        // Overlapping request fails and must not claim banks 5..6.
        assert!(!p.try_read(4..6));
        assert!(p.try_read(5..6));
    }

    #[test]
    fn reads_and_writes_use_independent_ports() {
        let mut p = BankPorts::new(4);
        assert!(p.try_read(0..4));
        assert!(p.try_write(0..4));
        assert!(!p.try_read(0..1));
        assert!(!p.try_write(3..4));
    }

    #[test]
    fn begin_cycle_frees_everything() {
        let mut p = BankPorts::new(2);
        assert!(p.try_read(0..2));
        assert!(p.try_write(0..2));
        p.begin_cycle();
        assert!(p.try_read(0..2));
        assert!(p.try_write(0..2));
    }

    #[test]
    fn compressed_register_frees_ports_for_other_requests() {
        // The §5 payoff: a <4,0>-compressed operand claims one bank, so a
        // second operand in the same cluster can be serviced this cycle.
        let mut p = BankPorts::new(8);
        assert!(p.try_read(0..1)); // compressed operand
        assert!(!p.try_read(0..8)); // uncompressed neighbour still conflicts on bank 0
        assert!(p.try_read(1..4)); // ...but a disjoint compressed one fits
    }

    #[test]
    fn empty_range_always_succeeds() {
        let mut p = BankPorts::new(2);
        assert!(p.try_read(1..1));
        assert!(p.try_read(1..1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_panics() {
        BankPorts::new(2).try_read(0..3);
    }
}
