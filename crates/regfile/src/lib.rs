//! Banked GPU register file substrate (paper §2.1, Fig. 1 and Fig. 6).
//!
//! Models the 128 KB, 32-bank register file of the paper's baseline SM:
//!
//! * 32 SRAM banks, each 128 bits wide × 256 entries (4 KB),
//! * banks grouped into 4 *clusters* of 8 consecutive banks; a warp
//!   register is statically allocated across the 8 banks of its warp's
//!   cluster at a fixed entry index,
//! * one read port and one write port per bank ([`BankPorts`] models the
//!   per-cycle arbitration),
//! * per-entry valid bits and bank-level power gating with a wake-up
//!   latency ([`PowerState`]), enabling the leakage savings of §5.3,
//! * compression-aware storage: registers are held as
//!   [`bdi::CompressedRegister`]s, and a compressed register occupies only
//!   the lowest `n` banks of its cluster, freeing the upper banks for
//!   gating (which reproduces the within-cluster gating gradient of
//!   Fig. 10).
//!
//! # Example
//!
//! ```
//! use bdi::{BdiCodec, WarpRegister};
//! use gpu_regfile::{RegFileConfig, RegisterFile, WarpSlot};
//!
//! let mut rf = RegisterFile::new(RegFileConfig::paper_baseline());
//! rf.allocate_warp(WarpSlot(0), 8, 0)?;
//!
//! let codec = BdiCodec::default();
//! let value = WarpRegister::from_fn(|t| 100 + t as u32);
//! let compressed = codec.compress(&value);
//! rf.write(WarpSlot(0), 3, compressed, 0).unwrap();
//!
//! let read = rf.read(WarpSlot(0), 3, 1);
//! assert_eq!(codec.decompress(read.register), value);
//! assert_eq!(read.banks_accessed, 3); // <4,1> spans 3 banks
//! # Ok::<(), gpu_regfile::RegFileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod bank;
mod config;
mod file;
#[cfg(feature = "sanitize")]
mod shadow;
mod stats;

pub use arbiter::BankPorts;
pub use bank::{Bank, PowerState};
pub use config::{GatingMode, RegFileConfig};
pub use file::{
    FaultDisposition, ReadError, ReadResult, ReadSample, RegFileError, RegisterFile, WarpSlot,
    WriteError,
};
#[cfg(feature = "sanitize")]
pub use shadow::ShadowRegisterFile;
pub use stats::RegFileStats;
