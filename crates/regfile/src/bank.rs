//! A single SRAM bank: valid-entry tracking and the power-gating state
//! machine of §5.3.

use serde::{Deserialize, Serialize};

/// Power state of one register bank.
///
/// A bank becomes a gating candidate when it holds no valid entries; it
/// is *effectively* gated (leakage saved, wake-up required) only after a
/// hysteresis interval, which prevents gate/wake thrash when a
/// register's footprint oscillates. Waking costs `wakeup_latency` cycles
/// (Table 2: 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Powered and usable.
    On,
    /// Empty since the given cycle; effectively gated (and saving
    /// leakage) from `since + hysteresis` onwards.
    Gated {
        /// Cycle at which the bank became empty.
        since: u64,
    },
    /// Waking up; usable from `ready_at`.
    Waking {
        /// First cycle at which the bank is usable again.
        ready_at: u64,
    },
}

/// One bank: a valid-entry counter plus power state and access counters.
///
/// The actual register *data* lives in the [`RegisterFile`]'s logical
/// store; the bank only tracks physical occupancy, which is all that
/// power gating and energy accounting need.
///
/// [`RegisterFile`]: crate::RegisterFile
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bank {
    valid_entries: usize,
    state: PowerState,
    reads: u64,
    writes: u64,
    gated_cycles: u64,
    wakeups: u64,
    hysteresis: u64,
}

impl Bank {
    /// A new bank: empty, and a gating candidate from cycle 0 if gating
    /// is enabled.
    pub fn new(gating: bool, hysteresis: u64) -> Self {
        Bank {
            valid_entries: 0,
            state: if gating {
                PowerState::Gated { since: 0 }
            } else {
                PowerState::On
            },
            reads: 0,
            writes: 0,
            gated_cycles: 0,
            wakeups: 0,
            hysteresis,
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Number of valid entries currently stored in the bank.
    pub fn valid_entries(&self) -> usize {
        self.valid_entries
    }

    /// Whether the bank can service an access at `now` without a wake-up.
    pub fn is_ready(&self, now: u64) -> bool {
        match self.state {
            PowerState::On => true,
            PowerState::Waking { ready_at } => now >= ready_at,
            // Within the hysteresis window the bank has not actually been
            // gated yet.
            PowerState::Gated { since } => now < since + self.hysteresis,
        }
    }

    /// Ensures the bank is powered for an access at `now`.
    ///
    /// Returns `None` if the bank is usable immediately, or
    /// `Some(ready_at)` if a wake-up was started (or is in flight) and the
    /// caller must retry at `ready_at`.
    pub fn ensure_on(&mut self, now: u64, wakeup_latency: u64) -> Option<u64> {
        match self.state {
            PowerState::On => None,
            PowerState::Waking { ready_at } if now >= ready_at => {
                self.state = PowerState::On;
                None
            }
            PowerState::Waking { ready_at } => Some(ready_at),
            PowerState::Gated { since } => {
                let effective = since + self.hysteresis;
                if now < effective {
                    // Hysteresis window: the bank never actually gated.
                    self.state = PowerState::On;
                    return None;
                }
                self.gated_cycles += now - effective;
                self.wakeups += 1;
                if wakeup_latency == 0 {
                    self.state = PowerState::On;
                    None
                } else {
                    let ready_at = now + wakeup_latency;
                    self.state = PowerState::Waking { ready_at };
                    Some(ready_at)
                }
            }
        }
    }

    /// Records that an entry became valid in this bank.
    pub fn add_valid(&mut self) {
        self.valid_entries += 1;
    }

    /// Records that an entry became invalid; marks the bank a gating
    /// candidate if it is now empty and gating is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no valid entries — that is an accounting bug
    /// in the caller.
    pub fn remove_valid(&mut self, now: u64, gating: bool) {
        assert!(self.valid_entries > 0, "remove_valid on empty bank");
        self.valid_entries -= 1;
        if gating && self.valid_entries == 0 {
            self.gate(now);
        }
    }

    /// Marks the bank a gating candidate if it is currently on.
    pub fn gate(&mut self, now: u64) {
        if matches!(self.state, PowerState::On | PowerState::Waking { .. }) {
            self.state = PowerState::Gated { since: now };
        }
    }

    /// Counts a read access.
    pub fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Counts a write access.
    pub fn record_write(&mut self) {
        self.writes += 1;
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Wake-ups performed.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Gated cycles accumulated up to `end` (closes the currently-open
    /// gated interval, net of hysteresis, without changing state).
    pub fn gated_cycles_at(&self, end: u64) -> u64 {
        match self.state {
            PowerState::Gated { since } => {
                self.gated_cycles + end.saturating_sub(since + self.hysteresis)
            }
            _ => self.gated_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_gated_when_gating_enabled() {
        assert_eq!(Bank::new(true, 0).state(), PowerState::Gated { since: 0 });
        assert_eq!(Bank::new(false, 0).state(), PowerState::On);
    }

    #[test]
    fn wakeup_takes_latency_cycles() {
        let mut b = Bank::new(true, 0);
        assert_eq!(b.ensure_on(100, 10), Some(110));
        assert_eq!(b.state(), PowerState::Waking { ready_at: 110 });
        // Retrying early still blocks.
        assert_eq!(b.ensure_on(105, 10), Some(110));
        // At ready time the bank turns on.
        assert_eq!(b.ensure_on(110, 10), None);
        assert_eq!(b.state(), PowerState::On);
        assert_eq!(b.wakeups(), 1);
    }

    #[test]
    fn zero_latency_wakeup_is_instant() {
        let mut b = Bank::new(true, 0);
        assert_eq!(b.ensure_on(5, 0), None);
        assert_eq!(b.state(), PowerState::On);
    }

    #[test]
    fn access_within_hysteresis_is_free() {
        let mut b = Bank::new(true, 64);
        b.ensure_on(0, 0);
        b.gate(100);
        // Re-access at 120, inside the 64-cycle window: no wake-up, no
        // gated cycles.
        assert_eq!(b.ensure_on(120, 10), None);
        assert_eq!(b.wakeups(), 0);
        assert_eq!(b.gated_cycles_at(200), 0);
    }

    #[test]
    fn access_after_hysteresis_pays_wakeup() {
        let mut b = Bank::new(true, 64);
        b.ensure_on(0, 0);
        b.gate(100);
        // Effective gating at 164; access at 200 pays the wake-up and
        // banked 200-164 = 36 gated cycles.
        assert_eq!(b.ensure_on(200, 10), Some(210));
        assert_eq!(b.wakeups(), 1);
        assert_eq!(b.gated_cycles_at(1000), 36);
    }

    #[test]
    fn gated_cycles_net_of_hysteresis() {
        let mut b = Bank::new(true, 64);
        b.ensure_on(0, 0);
        b.gate(100);
        assert_eq!(b.gated_cycles_at(164), 0);
        assert_eq!(b.gated_cycles_at(264), 100);
    }

    #[test]
    fn gated_cycles_accumulate_across_intervals() {
        let mut b = Bank::new(true, 0);
        // Gated [0, 50): wake at 50.
        b.ensure_on(50, 0);
        assert_eq!(b.gated_cycles_at(50), 50);
        // On [50, 80), gate again at 80.
        b.gate(80);
        assert_eq!(b.gated_cycles_at(100), 50 + 20);
    }

    #[test]
    fn valid_tracking_gates_empty_bank() {
        let mut b = Bank::new(true, 0);
        b.ensure_on(0, 0);
        b.add_valid();
        b.add_valid();
        b.remove_valid(10, true);
        assert_eq!(b.state(), PowerState::On);
        b.remove_valid(20, true);
        assert_eq!(b.state(), PowerState::Gated { since: 20 });
    }

    #[test]
    fn no_gating_when_disabled() {
        let mut b = Bank::new(false, 0);
        b.add_valid();
        b.remove_valid(10, false);
        assert_eq!(b.state(), PowerState::On);
        assert_eq!(b.gated_cycles_at(100), 0);
    }

    #[test]
    #[should_panic(expected = "empty bank")]
    fn remove_valid_on_empty_bank_panics() {
        Bank::new(true, 0).remove_valid(0, true);
    }

    #[test]
    fn access_counters() {
        let mut b = Bank::new(false, 0);
        b.record_read();
        b.record_read();
        b.record_write();
        assert_eq!(b.reads(), 2);
        assert_eq!(b.writes(), 1);
    }

    #[test]
    fn is_ready_reflects_state_and_hysteresis() {
        let mut b = Bank::new(true, 8);
        assert!(b.is_ready(0), "within hysteresis the bank is still on");
        assert!(!b.is_ready(8));
        b.ensure_on(8, 10);
        assert!(!b.is_ready(12));
        assert!(b.is_ready(18));
    }
}
