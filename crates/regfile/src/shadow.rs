//! Shadow (uncompressed) register file for `sanitize` builds.
//!
//! The real [`RegisterFile`](crate::RegisterFile) stores registers in
//! compressed form, and the simulator decompresses them on every read.
//! If the codec, the bank footprint bookkeeping, or the writeback merge
//! ever corrupted a value, the simulation would silently compute wrong
//! figures. The shadow file keeps every register in plain uncompressed
//! form, mirrors every architectural write, and asserts that each
//! decompressed read is bit-exact against it — turning a silent wrong
//! answer into an immediate panic at the first corrupted lane.
//!
//! Nothing here touches banks, ports or power state: the shadow is a
//! purely functional mirror, so it cannot perturb any timing or energy
//! statistic.

use bdi::{WarpRegister, WARP_SIZE};

use crate::WarpSlot;

/// Uncompressed mirror of every allocated (warp slot, register) pair.
#[derive(Clone, Debug, Default)]
pub struct ShadowRegisterFile {
    warps: Vec<Option<Vec<WarpRegister>>>,
}

impl ShadowRegisterFile {
    /// An empty shadow file.
    pub fn new() -> Self {
        ShadowRegisterFile::default()
    }

    /// Mirrors a warp allocation.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already allocated — the real file would
    /// have rejected the allocation, so reaching here is a wiring bug.
    pub fn allocate_warp(&mut self, slot: WarpSlot, num_regs: usize, initial: WarpRegister) {
        if self.warps.len() <= slot.0 {
            self.warps.resize(slot.0 + 1, None);
        }
        assert!(
            self.warps[slot.0].is_none(),
            "sanitize: shadow slot {} allocated twice",
            slot.0
        );
        self.warps[slot.0] = Some(vec![initial; num_regs]);
    }

    /// Mirrors a warp release.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not allocated.
    pub fn free_warp(&mut self, slot: WarpSlot) {
        let freed = self.warps.get_mut(slot.0).and_then(Option::take);
        assert!(
            freed.is_some(),
            "sanitize: shadow slot {} freed while unallocated",
            slot.0
        );
    }

    /// Mirrors an architectural register write (the full post-merge
    /// value, exactly what the compressed file is asked to store).
    ///
    /// # Panics
    ///
    /// Panics if the (slot, reg) pair is unallocated.
    pub fn record_write(&mut self, slot: WarpSlot, reg: usize, value: &WarpRegister) {
        *self.reg_mut(slot, reg) = *value;
    }

    /// Whether a decompressed read matches the shadow bit-exactly —
    /// the non-panicking form `faults` builds use to cross-check the
    /// injector's own masked/silent classification.
    ///
    /// # Panics
    ///
    /// Panics if the (slot, reg) pair is unallocated.
    pub fn matches(&self, slot: WarpSlot, reg: usize, decompressed: &WarpRegister) -> bool {
        self.reg(slot, reg) == decompressed
    }

    /// Asserts that a decompressed read matches the shadow bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics with the slot, register and first mismatching lane if the
    /// decompressed value differs from the mirrored one.
    pub fn check_read(&self, slot: WarpSlot, reg: usize, decompressed: &WarpRegister) {
        let expected = self.reg(slot, reg);
        if expected != decompressed {
            let lane = (0..WARP_SIZE)
                .find(|&l| expected.lane(l) != decompressed.lane(l))
                .expect("registers differ in some lane");
            panic!(
                "sanitize: decompressed read of slot {} r{reg} differs from shadow \
                 at lane {lane}: expected {:#010x}, got {:#010x}",
                slot.0,
                expected.lane(lane),
                decompressed.lane(lane),
            );
        }
    }

    fn reg(&self, slot: WarpSlot, reg: usize) -> &WarpRegister {
        self.warps
            .get(slot.0)
            .and_then(Option::as_ref)
            .and_then(|regs| regs.get(reg))
            .unwrap_or_else(|| panic!("sanitize: shadow slot {} r{reg} unallocated", slot.0))
    }

    fn reg_mut(&mut self, slot: WarpSlot, reg: usize) -> &mut WarpRegister {
        self.warps
            .get_mut(slot.0)
            .and_then(Option::as_mut)
            .and_then(|regs| regs.get_mut(reg))
            .unwrap_or_else(|| panic!("sanitize: shadow slot {} r{reg} unallocated", slot.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_round_trip() {
        let mut sh = ShadowRegisterFile::new();
        sh.allocate_warp(WarpSlot(2), 4, WarpRegister::ZERO);
        sh.check_read(WarpSlot(2), 3, &WarpRegister::ZERO);
        let v = WarpRegister::from_fn(|t| t as u32 * 3);
        sh.record_write(WarpSlot(2), 3, &v);
        sh.check_read(WarpSlot(2), 3, &v);
    }

    #[test]
    #[should_panic(expected = "lane 7")]
    fn mismatch_reports_first_bad_lane() {
        let mut sh = ShadowRegisterFile::new();
        sh.allocate_warp(WarpSlot(0), 1, WarpRegister::ZERO);
        let mut bad = WarpRegister::ZERO;
        bad.set_lane(7, 0xdead_beef);
        sh.check_read(WarpSlot(0), 0, &bad);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_allocation_panics() {
        let mut sh = ShadowRegisterFile::new();
        sh.allocate_warp(WarpSlot(0), 1, WarpRegister::ZERO);
        sh.allocate_warp(WarpSlot(0), 1, WarpRegister::ZERO);
    }

    #[test]
    fn free_allows_reuse() {
        let mut sh = ShadowRegisterFile::new();
        sh.allocate_warp(WarpSlot(1), 2, WarpRegister::splat(9));
        sh.free_warp(WarpSlot(1));
        sh.allocate_warp(WarpSlot(1), 2, WarpRegister::ZERO);
        sh.check_read(WarpSlot(1), 0, &WarpRegister::ZERO);
    }
}
