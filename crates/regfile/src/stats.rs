//! Register-file access and gating statistics.

use serde::{Deserialize, Serialize};

/// Snapshot of the register file's physical activity counters — the raw
/// inputs of the `gpu-power` energy model and of Fig. 10.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegFileStats {
    /// Read accesses per physical bank.
    pub bank_reads: Vec<u64>,
    /// Write accesses per physical bank.
    pub bank_writes: Vec<u64>,
    /// Cycles each bank spent power-gated.
    pub gated_cycles: Vec<u64>,
    /// Total bank wake-ups performed.
    pub wakeups: u64,
    /// Cycle at which the snapshot was taken.
    pub total_cycles: u64,
}

impl RegFileStats {
    /// Total bank reads across all banks.
    pub fn total_reads(&self) -> u64 {
        self.bank_reads.iter().sum()
    }

    /// Total bank writes across all banks.
    pub fn total_writes(&self) -> u64 {
        self.bank_writes.iter().sum()
    }

    /// Total bank accesses (reads + writes) — each costs one bank-access
    /// energy quantum plus one 128-bit wire transfer.
    pub fn total_accesses(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Fraction of simulated cycles bank `bank` spent gated — one bar of
    /// Fig. 10.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn gated_fraction(&self, bank: usize) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.gated_cycles[bank] as f64 / self.total_cycles as f64
    }

    /// Mean gated fraction over all banks — the leakage-saving factor.
    pub fn mean_gated_fraction(&self) -> f64 {
        if self.gated_cycles.is_empty() || self.total_cycles == 0 {
            return 0.0;
        }
        let sum: u64 = self.gated_cycles.iter().sum();
        sum as f64 / (self.gated_cycles.len() as f64 * self.total_cycles as f64)
    }

    /// Number of banks in the snapshot.
    pub fn num_banks(&self) -> usize {
        self.bank_reads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegFileStats {
        RegFileStats {
            bank_reads: vec![10, 0, 5, 0],
            bank_writes: vec![2, 1, 0, 0],
            gated_cycles: vec![0, 50, 0, 100],
            wakeups: 3,
            total_cycles: 100,
        }
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.total_reads(), 15);
        assert_eq!(s.total_writes(), 3);
        assert_eq!(s.total_accesses(), 18);
        assert_eq!(s.num_banks(), 4);
    }

    #[test]
    fn gated_fractions() {
        let s = sample();
        assert!((s.gated_fraction(1) - 0.5).abs() < 1e-12);
        assert!((s.gated_fraction(3) - 1.0).abs() < 1e-12);
        assert!((s.mean_gated_fraction() - 150.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_fraction() {
        let s = RegFileStats {
            gated_cycles: vec![5],
            bank_reads: vec![0],
            bank_writes: vec![0],
            ..Default::default()
        };
        assert_eq!(s.gated_fraction(0), 0.0);
        assert_eq!(s.mean_gated_fraction(), 0.0);
    }
}
