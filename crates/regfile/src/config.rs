//! Register file configuration.

use serde::{Deserialize, Serialize};

/// Leakage-management policy for empty register banks.
///
/// `PowerGate` is the paper's §5.3 mechanism. `Drowsy` models the
/// alternative from the Warped Register File line of work the paper cites
/// (the paper’s reference \[9\]): instead of cutting power entirely, an empty bank drops to a
/// low-voltage retention state that still leaks a fraction of nominal
/// (see [`EnergyParams::drowsy_leakage_fraction`]) but wakes in a single
/// cycle — a classic leakage-saving vs wake-latency trade-off.
///
/// [`EnergyParams::drowsy_leakage_fraction`]: https://docs.rs/gpu-power
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatingMode {
    /// No leakage management — the uncompressed baseline, where every
    /// bank holds live data anyway.
    #[default]
    Off,
    /// Bank-level power gating: zero leakage when gated, full wake-up
    /// latency (Table 2: 10 cycles).
    PowerGate,
    /// Drowsy retention state: reduced leakage, 1-cycle wake-up.
    Drowsy,
}

impl GatingMode {
    /// Whether empty banks enter a low-leakage state at all.
    pub fn is_enabled(self) -> bool {
        self != GatingMode::Off
    }
}

/// Geometry and policy knobs of the banked register file.
///
/// Defaults come straight from the paper's Table 2: 32 banks × 128 bit ×
/// 256 entries (128 KB), 10-cycle bank wake-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegFileConfig {
    /// Total number of SRAM banks (Table 2: 32).
    pub num_banks: usize,
    /// Entries per bank (Table 2: 256).
    pub entries_per_bank: usize,
    /// Banks spanned by one uncompressed warp register (128 B / 16 B = 8).
    pub banks_per_cluster: usize,
    /// Cycles to wake a power-gated bank (Table 2: 10).
    pub wakeup_latency: u64,
    /// Cycles to wake a drowsy bank (prior work: 1).
    pub drowsy_wakeup_latency: u64,
    /// Leakage management for empty banks (§5.3). The baseline
    /// (no compression) gains nothing from it; warped-compression uses
    /// `PowerGate`.
    pub gating: GatingMode,
    /// Idle cycles a bank must stay empty before it enters the low-power
    /// state. Prevents gate/wake thrash when a register's footprint
    /// oscillates; leakage is only counted as saved after the hysteresis
    /// elapses.
    pub gating_hysteresis: u64,
}

impl RegFileConfig {
    /// The paper's Table 2 register file with §5.3 power gating.
    pub fn paper_baseline() -> Self {
        RegFileConfig {
            num_banks: 32,
            entries_per_bank: 256,
            banks_per_cluster: 8,
            wakeup_latency: 10,
            drowsy_wakeup_latency: 1,
            gating: GatingMode::PowerGate,
            gating_hysteresis: 256,
        }
    }

    /// Number of bank clusters (4 in the paper's configuration).
    pub fn num_clusters(&self) -> usize {
        self.num_banks / self.banks_per_cluster
    }

    /// Total register file capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_banks * self.entries_per_bank * bdi::BANK_BYTES
    }

    /// Total 32-bit registers the file can hold (Table 2: 32768).
    pub fn total_thread_registers(&self) -> usize {
        self.capacity_bytes() / 4
    }

    /// The wake-up latency of the configured low-power state.
    pub fn effective_wakeup_latency(&self) -> u64 {
        match self.gating {
            GatingMode::Off => 0,
            GatingMode::PowerGate => self.wakeup_latency,
            GatingMode::Drowsy => self.drowsy_wakeup_latency,
        }
    }
}

impl Default for RegFileConfig {
    fn default() -> Self {
        RegFileConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_2() {
        let c = RegFileConfig::paper_baseline();
        assert_eq!(c.num_banks, 32);
        assert_eq!(c.entries_per_bank, 256);
        assert_eq!(c.capacity_bytes(), 128 * 1024);
        assert_eq!(c.total_thread_registers(), 32768);
        assert_eq!(c.num_clusters(), 4);
        assert_eq!(c.wakeup_latency, 10);
        assert_eq!(c.gating, GatingMode::PowerGate);
    }

    #[test]
    fn effective_wakeup_latency_follows_mode() {
        let mut c = RegFileConfig::paper_baseline();
        assert_eq!(c.effective_wakeup_latency(), 10);
        c.gating = GatingMode::Drowsy;
        assert_eq!(c.effective_wakeup_latency(), 1);
        c.gating = GatingMode::Off;
        assert_eq!(c.effective_wakeup_latency(), 0);
    }

    #[test]
    fn gating_mode_enablement() {
        assert!(!GatingMode::Off.is_enabled());
        assert!(GatingMode::PowerGate.is_enabled());
        assert!(GatingMode::Drowsy.is_enabled());
    }
}
