//! The compression-aware register file.

use std::error::Error;
use std::fmt;

use bdi::{CompressedRegister, CompressionIndicator};
use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::config::RegFileConfig;
use crate::stats::RegFileStats;

/// A hardware warp slot within one SM (0..max_warps). Warp slot *s* maps
/// to bank cluster `s % num_clusters`, so consecutively-launched warps
/// spread across clusters — the allocation the paper assumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WarpSlot(pub usize);

/// One architectural register's stored state.
#[derive(Clone, Debug)]
struct StoredReg {
    value: CompressedRegister,
    /// Banks of the cluster currently holding valid chunks of this
    /// register (always `value.banks_required()` after a write).
    footprint: usize,
}

#[derive(Clone, Debug)]
struct WarpAlloc {
    base_entry: usize,
    regs: Vec<StoredReg>,
}

/// Result of a register read.
#[derive(Debug)]
pub struct ReadResult<'a> {
    /// The stored (possibly compressed) register.
    pub register: &'a CompressedRegister,
    /// Number of banks the arbiter had to access (1/3/5/8).
    pub banks_accessed: usize,
}

/// Result of a fallible register read ([`RegisterFile::try_read`]).
///
/// Owns the register value instead of borrowing it: under fault
/// injection the delivered value may differ from the stored one, so no
/// reference into storage can represent it.
#[derive(Clone, Copy, Debug)]
pub struct ReadSample {
    /// The delivered (possibly compressed, possibly corrupted) register.
    pub register: CompressedRegister,
    /// Number of banks the arbiter had to access (1/3/5/8).
    pub banks_accessed: usize,
    /// What fault injection did to this read, if anything.
    pub fault: Option<FaultDisposition>,
}

/// What the fault injector did to a read that still delivered a value.
///
/// Mirrors `gpu_faults::ReadDisposition`, but is always compiled so
/// [`ReadSample`] has one shape with and without the `faults` feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDisposition {
    /// Corruption present but semantically invisible.
    Masked,
    /// SEC-DED restored the written bits.
    Corrected,
    /// A wrong value is being delivered undetected.
    SilentCorruption,
}

/// Read failures ([`RegisterFile::try_read`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The (slot, reg) pair was never allocated.
    Unallocated,
    /// The stored form failed structural validation — corrupted state
    /// reached the decoder.
    Corrupted(bdi::DecodeError),
    /// Register protection detected an uncorrectable bit error (the
    /// machine-check case; only reachable with fault injection armed).
    Uncorrectable,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Unallocated => f.write_str("register read from unallocated warp slot"),
            ReadError::Corrupted(e) => write!(f, "register read returned corrupt state: {e}"),
            ReadError::Uncorrectable => {
                f.write_str("uncorrectable bit error detected on register read")
            }
        }
    }
}

impl Error for ReadError {}

/// Allocation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegFileError {
    /// The warp slot is already allocated.
    SlotInUse(WarpSlot),
    /// Not enough entries left in the slot's cluster for this many
    /// registers.
    OutOfEntries {
        /// The requested slot.
        slot: WarpSlot,
        /// Registers requested per thread.
        num_regs: usize,
        /// Entries each bank has in total.
        entries_per_bank: usize,
    },
    /// The slot index exceeds what the bank geometry can address.
    SlotOutOfRange(WarpSlot),
}

impl fmt::Display for RegFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFileError::SlotInUse(s) => write!(f, "warp slot {} already allocated", s.0),
            RegFileError::OutOfEntries { slot, num_regs, entries_per_bank } => write!(
                f,
                "allocating {num_regs} registers for slot {} exceeds {entries_per_bank} entries per bank",
                slot.0
            ),
            RegFileError::SlotOutOfRange(s) => write!(f, "warp slot {} out of range", s.0),
        }
    }
}

impl Error for RegFileError {}

/// Write failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// One or more destination banks are waking from power gating; retry
    /// at the given cycle. The wake-up of every needed bank has been
    /// initiated (they wake in parallel).
    NotReady {
        /// First cycle at which all destination banks will be powered.
        ready_at: u64,
    },
    /// The (slot, reg) pair was never allocated.
    Unallocated,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::NotReady { ready_at } => {
                write!(f, "destination banks waking, ready at cycle {ready_at}")
            }
            WriteError::Unallocated => f.write_str("register write to unallocated warp slot"),
        }
    }
}

impl Error for WriteError {}

/// The banked, compression-aware register file of Fig. 1.
///
/// Logically it stores one [`CompressedRegister`] per allocated
/// (warp slot, architectural register) pair; physically it tracks which
/// banks hold valid chunks, drives the power-gating state machine, and
/// counts every bank access for the energy model.
#[derive(Clone, Debug)]
pub struct RegisterFile {
    cfg: RegFileConfig,
    banks: Vec<Bank>,
    warps: Vec<Option<WarpAlloc>>,
    /// Armed fault injector, if any ([`arm_faults`](Self::arm_faults)).
    #[cfg(feature = "faults")]
    injector: Option<gpu_faults::FaultInjector>,
}

impl RegisterFile {
    /// Creates an empty register file with the given geometry.
    pub fn new(cfg: RegFileConfig) -> Self {
        let banks = (0..cfg.num_banks)
            .map(|_| Bank::new(cfg.gating.is_enabled(), cfg.gating_hysteresis))
            .collect();
        RegisterFile {
            cfg,
            banks,
            warps: Vec::new(),
            #[cfg(feature = "faults")]
            injector: None,
        }
    }

    /// Arms fault injection: every subsequent write and
    /// [`try_read`](Self::try_read) passes through the injector. The
    /// plain [`read`](Self::read) path stays fault-free (it is the
    /// golden reference).
    #[cfg(feature = "faults")]
    pub fn arm_faults(&mut self, injector: gpu_faults::FaultInjector) {
        self.injector = Some(injector);
    }

    /// Disarms the injector and produces its event log (unread
    /// corruption resolves as latent, untriggered specs as such).
    /// Returns `None` if faults were never armed.
    #[cfg(feature = "faults")]
    pub fn take_fault_log(&mut self) -> Option<gpu_faults::FaultLog> {
        self.injector.take().map(gpu_faults::FaultInjector::finish)
    }

    /// The configured geometry.
    pub fn config(&self) -> &RegFileConfig {
        &self.cfg
    }

    /// Maximum warp slots addressable given `num_regs` registers per
    /// thread: each cluster offers `entries_per_bank / num_regs` slots.
    pub fn max_slots(&self, num_regs: usize) -> usize {
        if num_regs == 0 {
            return 0;
        }
        self.cfg.num_clusters() * (self.cfg.entries_per_bank / num_regs)
    }

    /// Allocates `num_regs` registers for a warp, initialising every
    /// register to `initial` (the baseline passes an uncompressed zero —
    /// full 8-bank footprint, no gating opportunity; warped-compression
    /// passes a ⟨4,0⟩ zero — 1 bank).
    ///
    /// Banks that receive valid entries are powered on immediately
    /// (allocation happens at launch, off the execution critical path).
    ///
    /// # Errors
    ///
    /// See [`RegFileError`].
    pub fn allocate_warp(
        &mut self,
        slot: WarpSlot,
        num_regs: usize,
        now: u64,
    ) -> Result<(), RegFileError> {
        self.allocate_warp_with(
            slot,
            num_regs,
            &CompressedRegister::Uncompressed(Default::default()),
            now,
        )
    }

    /// Like [`allocate_warp`](Self::allocate_warp) but with an explicit
    /// initial register value (shared by all `num_regs` registers).
    pub fn allocate_warp_with(
        &mut self,
        slot: WarpSlot,
        num_regs: usize,
        initial: &CompressedRegister,
        now: u64,
    ) -> Result<(), RegFileError> {
        let clusters = self.cfg.num_clusters();
        let within = slot.0 / clusters;
        let base_entry = within * num_regs;
        if base_entry + num_regs > self.cfg.entries_per_bank {
            return if num_regs > self.cfg.entries_per_bank {
                Err(RegFileError::OutOfEntries {
                    slot,
                    num_regs,
                    entries_per_bank: self.cfg.entries_per_bank,
                })
            } else {
                Err(RegFileError::SlotOutOfRange(slot))
            };
        }
        if self.warps.len() <= slot.0 {
            self.warps.resize(slot.0 + 1, None);
        }
        if self.warps[slot.0].is_some() {
            return Err(RegFileError::SlotInUse(slot));
        }
        let footprint = initial.banks_required();
        let cluster = slot.0 % clusters;
        for b in 0..footprint {
            let bank = &mut self.banks[cluster * self.cfg.banks_per_cluster + b];
            for _ in 0..num_regs {
                bank.add_valid();
            }
            // Launch-time power-on: not modelled as a runtime wake-up.
            bank.ensure_on(now, 0);
        }
        let regs = (0..num_regs)
            .map(|_| StoredReg {
                value: *initial,
                footprint,
            })
            .collect();
        self.warps[slot.0] = Some(WarpAlloc { base_entry, regs });
        Ok(())
    }

    /// Releases a warp's registers, gating banks that become empty.
    pub fn free_warp(&mut self, slot: WarpSlot, now: u64) {
        let Some(alloc) = self.warps.get_mut(slot.0).and_then(Option::take) else {
            return;
        };
        let cluster = slot.0 % self.cfg.num_clusters();
        for reg in &alloc.regs {
            for b in 0..reg.footprint {
                self.banks[cluster * self.cfg.banks_per_cluster + b]
                    .remove_valid(now, self.cfg.gating.is_enabled());
            }
        }
        #[cfg(feature = "faults")]
        if let Some(injector) = self.injector.as_mut() {
            injector.on_free(slot.0 as u32);
        }
    }

    /// The 2-bit compression-range indicator the bank arbiter consults
    /// before issuing bank reads (§4). Returns `None` if unallocated.
    pub fn indicator(&self, slot: WarpSlot, reg: usize) -> Option<CompressionIndicator> {
        self.stored(slot, reg).map(|s| s.value.indicator())
    }

    /// Whether the register currently sits in compressed state.
    pub fn is_compressed(&self, slot: WarpSlot, reg: usize) -> bool {
        self.stored(slot, reg)
            .map(|s| s.value.is_compressed())
            .unwrap_or(false)
    }

    /// Reads a register, counting one access on each bank it occupies.
    ///
    /// # Panics
    ///
    /// Panics if the (slot, reg) pair is unallocated — reads of
    /// unallocated registers are a simulator bug, not a runtime condition.
    pub fn read(&mut self, slot: WarpSlot, reg: usize, now: u64) -> ReadResult<'_> {
        let cluster = slot.0 % self.cfg.num_clusters();
        let bank_base = cluster * self.cfg.banks_per_cluster;
        let alloc = self
            .warps
            .get(slot.0)
            .and_then(Option::as_ref)
            .expect("read of unallocated warp");
        let stored = alloc.regs.get(reg).expect("read of unallocated register");
        let footprint = stored.footprint;
        for b in 0..footprint {
            debug_assert!(
                self.banks[bank_base + b].is_ready(now),
                "read hit a gated bank"
            );
        }
        for b in 0..footprint {
            self.banks[bank_base + b].record_read();
        }
        let alloc = self.warps[slot.0].as_ref().expect("checked above");
        ReadResult {
            register: &alloc.regs[reg].value,
            banks_accessed: footprint,
        }
    }

    /// Fallible read: like [`read`](Self::read) but surfaces unallocated
    /// registers and corrupted/uncorrectable state as a typed
    /// [`ReadError`] instead of panicking, and routes the access through
    /// the fault injector when one is armed — so the value delivered may
    /// legitimately differ from the value stored.
    pub fn try_read(
        &mut self,
        slot: WarpSlot,
        reg: usize,
        now: u64,
    ) -> Result<ReadSample, ReadError> {
        let cluster = slot.0 % self.cfg.num_clusters();
        let bank_base = cluster * self.cfg.banks_per_cluster;
        let Some(stored) = self.stored(slot, reg) else {
            return Err(ReadError::Unallocated);
        };
        let footprint = stored.footprint;
        let value = stored.value;
        for b in 0..footprint {
            debug_assert!(
                self.banks[bank_base + b].is_ready(now),
                "read hit a gated bank"
            );
        }
        for b in 0..footprint {
            self.banks[bank_base + b].record_read();
        }
        #[cfg(feature = "faults")]
        if let Some(injector) = self.injector.as_mut() {
            return match injector.on_read(slot.0 as u32, reg as u16, &value) {
                Ok(None) => Ok(ReadSample {
                    register: value,
                    banks_accessed: footprint,
                    fault: None,
                }),
                Ok(Some((delivered, disposition))) => {
                    delivered.validate().map_err(ReadError::Corrupted)?;
                    Ok(ReadSample {
                        register: delivered,
                        banks_accessed: footprint,
                        fault: Some(match disposition {
                            gpu_faults::ReadDisposition::Masked => FaultDisposition::Masked,
                            gpu_faults::ReadDisposition::Corrected => FaultDisposition::Corrected,
                            gpu_faults::ReadDisposition::SilentCorruption => {
                                FaultDisposition::SilentCorruption
                            }
                        }),
                    })
                }
                Err(gpu_faults::DetectedFault) => Err(ReadError::Uncorrectable),
            };
        }
        value.validate().map_err(ReadError::Corrupted)?;
        Ok(ReadSample {
            register: value,
            banks_accessed: footprint,
            fault: None,
        })
    }

    /// Writes a register value (already compressed or not by the caller's
    /// compressor unit), updating valid bits and power gating.
    ///
    /// On success returns the number of banks written. If the value needs
    /// banks that are currently gated, their wake-up is initiated and
    /// `WriteError::NotReady` tells the caller when to retry — the stored
    /// value is unchanged until then (the paper charges this as the
    /// 10-cycle bank wake-up stall).
    ///
    /// # Errors
    ///
    /// See [`WriteError`].
    pub fn write(
        &mut self,
        slot: WarpSlot,
        reg: usize,
        value: CompressedRegister,
        now: u64,
    ) -> Result<usize, WriteError> {
        let cluster = slot.0 % self.cfg.num_clusters();
        let bank_base = cluster * self.cfg.banks_per_cluster;
        let wakeup = self.cfg.effective_wakeup_latency();
        let gating = self.cfg.gating.is_enabled();
        let new_footprint = value.banks_required();

        let Some(alloc) = self.warps.get(slot.0).and_then(Option::as_ref) else {
            return Err(WriteError::Unallocated);
        };
        if reg >= alloc.regs.len() {
            return Err(WriteError::Unallocated);
        }

        // Wake every destination bank in parallel.
        let mut ready_at = None;
        for b in 0..new_footprint {
            if let Some(r) = self.banks[bank_base + b].ensure_on(now, wakeup) {
                ready_at = Some(ready_at.map_or(r, |cur: u64| cur.max(r)));
            }
        }
        if let Some(ready_at) = ready_at {
            return Err(WriteError::NotReady { ready_at });
        }

        let alloc = self.warps[slot.0].as_mut().expect("checked above");
        let stored = &mut alloc.regs[reg];
        let old_footprint = stored.footprint;
        stored.value = value;
        stored.footprint = new_footprint;

        for b in new_footprint..old_footprint {
            self.banks[bank_base + b].remove_valid(now, gating);
        }
        for b in old_footprint..new_footprint {
            self.banks[bank_base + b].add_valid();
        }
        for b in 0..new_footprint {
            self.banks[bank_base + b].record_write();
        }
        #[cfg(feature = "faults")]
        if let Some(injector) = self.injector.as_mut() {
            // The stored value stays clean; any injected corruption lives
            // in the injector and is merged in on try_read.
            injector.on_write(slot.0 as u32, reg as u16, &value);
        }
        Ok(new_footprint)
    }

    /// Looks at a stored register *without* counting a bank access.
    ///
    /// Hardware analogue: per-lane write-enable merging on a write does
    /// not read the SRAM arrays, so the simulator uses `peek` when it
    /// needs the old value functionally but must not charge read energy.
    pub fn peek(&self, slot: WarpSlot, reg: usize) -> Option<&CompressedRegister> {
        self.stored(slot, reg).map(|s| &s.value)
    }

    /// Counts (compressed, total) over one warp's allocated registers —
    /// the per-warp Fig. 12 sample.
    pub fn warp_census(&self, slot: WarpSlot) -> (usize, usize) {
        let Some(alloc) = self.warps.get(slot.0).and_then(Option::as_ref) else {
            return (0, 0);
        };
        let compressed = alloc
            .regs
            .iter()
            .filter(|r| r.value.is_compressed())
            .count();
        (compressed, alloc.regs.len())
    }

    /// Counts (compressed, total) over all currently-allocated registers —
    /// the Fig. 12 sample.
    pub fn compressed_census(&self) -> (usize, usize) {
        let mut compressed = 0;
        let mut total = 0;
        for alloc in self.warps.iter().flatten() {
            for reg in &alloc.regs {
                total += 1;
                if reg.value.is_compressed() {
                    compressed += 1;
                }
            }
        }
        (compressed, total)
    }

    /// Entry index (within each bank) where `reg` of `slot` lives.
    pub fn entry_of(&self, slot: WarpSlot, reg: usize) -> Option<usize> {
        let alloc = self.warps.get(slot.0)?.as_ref()?;
        (reg < alloc.regs.len()).then_some(alloc.base_entry + reg)
    }

    /// Direct view of one bank's state (valid-entry count, power state,
    /// counters) — for invariant checks and debugging tools.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_banks`.
    pub fn bank(&self, index: usize) -> &Bank {
        &self.banks[index]
    }

    /// Snapshot of per-bank counters, with gated intervals closed at
    /// `end_cycle`.
    pub fn stats(&self, end_cycle: u64) -> RegFileStats {
        RegFileStats {
            bank_reads: self.banks.iter().map(Bank::reads).collect(),
            bank_writes: self.banks.iter().map(Bank::writes).collect(),
            gated_cycles: self
                .banks
                .iter()
                .map(|b| b.gated_cycles_at(end_cycle))
                .collect(),
            wakeups: self.banks.iter().map(Bank::wakeups).sum(),
            total_cycles: end_cycle,
        }
    }

    fn stored(&self, slot: WarpSlot, reg: usize) -> Option<&StoredReg> {
        self.warps.get(slot.0)?.as_ref()?.regs.get(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatingMode;
    use bdi::{BdiCodec, WarpRegister};

    fn wc_file() -> RegisterFile {
        RegisterFile::new(RegFileConfig::paper_baseline())
    }

    /// Gating with no hysteresis: banks gate the moment they empty, which
    /// makes wake-up timing exact for the tests below.
    fn eager_gating_file() -> RegisterFile {
        RegisterFile::new(RegFileConfig {
            gating_hysteresis: 0,
            ..RegFileConfig::paper_baseline()
        })
    }

    fn baseline_file() -> RegisterFile {
        RegisterFile::new(RegFileConfig {
            gating: GatingMode::Off,
            ..RegFileConfig::paper_baseline()
        })
    }

    fn compressed_zero() -> CompressedRegister {
        BdiCodec::default().compress(&WarpRegister::ZERO)
    }

    /// Writes, transparently riding out a bank wake-up stall.
    fn write_retry(
        rf: &mut RegisterFile,
        slot: WarpSlot,
        reg: usize,
        v: CompressedRegister,
        now: u64,
    ) -> usize {
        match rf.write(slot, reg, v, now) {
            Ok(n) => n,
            Err(WriteError::NotReady { ready_at }) => rf.write(slot, reg, v, ready_at).unwrap(),
            Err(e) => panic!("write failed: {e}"),
        }
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 4, &compressed_zero(), 0)
            .unwrap();
        let codec = BdiCodec::default();
        let v = WarpRegister::from_fn(|t| 7 * t as u32);
        write_retry(&mut rf, WarpSlot(0), 2, codec.compress(&v), 0);
        let r = rf.read(WarpSlot(0), 2, 20);
        assert_eq!(codec.decompress(r.register), v);
    }

    #[test]
    fn double_allocation_rejected() {
        let mut rf = wc_file();
        rf.allocate_warp(WarpSlot(3), 4, 0).unwrap();
        assert_eq!(
            rf.allocate_warp(WarpSlot(3), 4, 0),
            Err(RegFileError::SlotInUse(WarpSlot(3)))
        );
    }

    #[test]
    fn slot_out_of_range_rejected() {
        let mut rf = wc_file();
        // 256 entries / 64 regs = 4 slots per cluster, 16 total (0..16).
        assert!(rf.allocate_warp(WarpSlot(15), 64, 0).is_ok());
        assert_eq!(
            rf.allocate_warp(WarpSlot(16), 64, 0),
            Err(RegFileError::SlotOutOfRange(WarpSlot(16)))
        );
    }

    #[test]
    fn too_many_regs_rejected() {
        let mut rf = wc_file();
        assert!(matches!(
            rf.allocate_warp(WarpSlot(0), 257, 0),
            Err(RegFileError::OutOfEntries { .. })
        ));
    }

    #[test]
    fn max_slots_matches_geometry() {
        let rf = wc_file();
        assert_eq!(rf.max_slots(21), 4 * (256 / 21)); // 48 — the Table 2 warp limit
        assert_eq!(rf.max_slots(0), 0);
    }

    #[test]
    fn uncompressed_write_touches_eight_banks() {
        let mut rf = baseline_file();
        rf.allocate_warp(WarpSlot(0), 2, 0).unwrap();
        let v = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9));
        let banks = rf
            .write(WarpSlot(0), 0, CompressedRegister::Uncompressed(v), 0)
            .unwrap();
        assert_eq!(banks, 8);
        assert_eq!(rf.read(WarpSlot(0), 0, 1).banks_accessed, 8);
    }

    #[test]
    fn compressed_write_touches_fewer_banks() {
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 2, &compressed_zero(), 0)
            .unwrap();
        let codec = BdiCodec::default();
        let banks = rf
            .write(WarpSlot(0), 0, codec.compress(&WarpRegister::splat(9)), 0)
            .unwrap();
        assert_eq!(banks, 1);
    }

    #[test]
    fn growing_footprint_requires_wakeup() {
        let mut rf = eager_gating_file();
        rf.allocate_warp_with(WarpSlot(0), 2, &compressed_zero(), 0)
            .unwrap();
        // Banks 1..8 of cluster 0 are gated (only bank 0 holds the <4,0>
        // zeros). Writing an uncompressed value needs all 8.
        let v = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x85EB_CA6B));
        let err = rf
            .write(WarpSlot(0), 0, CompressedRegister::Uncompressed(v), 100)
            .unwrap_err();
        assert_eq!(err, WriteError::NotReady { ready_at: 110 });
        // Retry at ready time succeeds.
        assert_eq!(
            rf.write(WarpSlot(0), 0, CompressedRegister::Uncompressed(v), 110)
                .unwrap(),
            8
        );
    }

    #[test]
    fn shrinking_footprint_gates_upper_banks() {
        let mut rf = eager_gating_file();
        rf.allocate_warp_with(WarpSlot(0), 1, &compressed_zero(), 0)
            .unwrap();
        let v = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x85EB_CA6B));
        // Grow to 8 banks (stalls on the wake-up of banks 1..8 first).
        write_retry(
            &mut rf,
            WarpSlot(0),
            0,
            CompressedRegister::Uncompressed(v),
            0,
        );
        // Shrink back to 1 bank: banks 1..8 of cluster 0 empty at cycle 20.
        let codec = BdiCodec::default();
        rf.write(WarpSlot(0), 0, codec.compress(&WarpRegister::splat(1)), 20)
            .unwrap();
        let stats = rf.stats(120);
        for b in 1..8 {
            assert_eq!(stats.gated_cycles[b], 100, "bank {b}");
        }
        // Bank 0 never gated after allocation at cycle 0.
        assert_eq!(stats.gated_cycles[0], 0);
    }

    #[test]
    fn hysteresis_avoids_wakeup_thrash() {
        // With the default hysteresis, an oscillating footprint close in
        // time never pays a wake-up.
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 1, &compressed_zero(), 0)
            .unwrap();
        let wide = CompressedRegister::Uncompressed(WarpRegister::from_fn(|t| {
            (t as u32).wrapping_mul(0x85EB_CA6B)
        }));
        let narrow = BdiCodec::default().compress(&WarpRegister::splat(1));
        for t in 0..20 {
            rf.write(WarpSlot(0), 0, wide, t * 10).unwrap();
            rf.write(WarpSlot(0), 0, narrow, t * 10 + 5).unwrap();
        }
        assert_eq!(rf.stats(200).wakeups, 0);
    }

    #[test]
    fn baseline_never_gates() {
        let mut rf = baseline_file();
        rf.allocate_warp(WarpSlot(0), 4, 0).unwrap();
        rf.free_warp(WarpSlot(0), 50);
        let stats = rf.stats(1000);
        assert!(stats.gated_cycles.iter().all(|&c| c == 0));
    }

    #[test]
    fn census_counts_compressed_registers() {
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 3, &compressed_zero(), 0)
            .unwrap();
        assert_eq!(rf.compressed_census(), (3, 3));
        let v = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x85EB_CA6B));
        let _ = rf.write(WarpSlot(0), 1, CompressedRegister::Uncompressed(v), 0);
        // First write stalls on wakeup; retry after it completes.
        rf.write(WarpSlot(0), 1, CompressedRegister::Uncompressed(v), 10)
            .unwrap();
        assert_eq!(rf.compressed_census(), (2, 3));
    }

    #[test]
    fn warps_in_different_clusters_use_disjoint_banks() {
        let mut rf = baseline_file();
        rf.allocate_warp(WarpSlot(0), 2, 0).unwrap(); // cluster 0
        rf.allocate_warp(WarpSlot(1), 2, 0).unwrap(); // cluster 1
        let v = WarpRegister::splat(1);
        rf.write(WarpSlot(1), 0, CompressedRegister::Uncompressed(v), 0)
            .unwrap();
        let stats = rf.stats(1);
        assert_eq!(stats.bank_writes[0], 0);
        assert_eq!(stats.bank_writes[8], 1);
    }

    #[test]
    fn entry_mapping_packs_cluster_neighbours() {
        let mut rf = wc_file();
        rf.allocate_warp(WarpSlot(0), 10, 0).unwrap(); // cluster 0, within 0
        rf.allocate_warp(WarpSlot(4), 10, 0).unwrap(); // cluster 0, within 1
        assert_eq!(rf.entry_of(WarpSlot(0), 3), Some(3));
        assert_eq!(rf.entry_of(WarpSlot(4), 3), Some(13));
        assert_eq!(rf.entry_of(WarpSlot(4), 10), None);
    }

    #[test]
    fn write_to_unallocated_is_an_error() {
        let mut rf = wc_file();
        let v = CompressedRegister::Uncompressed(WarpRegister::ZERO);
        assert_eq!(rf.write(WarpSlot(0), 0, v, 0), Err(WriteError::Unallocated));
        rf.allocate_warp(WarpSlot(0), 2, 0).unwrap();
        assert_eq!(rf.write(WarpSlot(0), 5, v, 0), Err(WriteError::Unallocated));
    }

    #[test]
    fn try_read_returns_typed_error_for_unallocated() {
        let mut rf = wc_file();
        assert_eq!(
            rf.try_read(WarpSlot(0), 0, 0).unwrap_err(),
            ReadError::Unallocated
        );
        rf.allocate_warp(WarpSlot(0), 2, 0).unwrap();
        assert_eq!(
            rf.try_read(WarpSlot(0), 5, 0).unwrap_err(),
            ReadError::Unallocated
        );
    }

    #[test]
    fn try_read_matches_read_and_counts_banks() {
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 2, &compressed_zero(), 0)
            .unwrap();
        let codec = BdiCodec::default();
        let v = WarpRegister::from_fn(|t| 11 + t as u32);
        write_retry(&mut rf, WarpSlot(0), 1, codec.compress(&v), 0);
        let sample = rf.try_read(WarpSlot(0), 1, 20).unwrap();
        assert_eq!(sample.banks_accessed, 3);
        assert_eq!(sample.fault, None);
        assert_eq!(codec.decompress(&sample.register), v);
        // Bank read counters were charged exactly like read().
        assert_eq!(rf.stats(20).bank_reads[0], 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn armed_injector_corrupts_try_read_but_not_read() {
        use gpu_faults::{
            FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTarget, ProtectionModel,
        };
        let plan = FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                id: 0,
                at_write: 1,
                target: FaultTarget::Payload,
                kind: FaultKind::TransientSingle,
                bit_a: 1, // bit 1 of the base word: changes every lane
                bit_b: 0,
                stuck_bank: 0,
                stuck_bit: 0,
                stuck_value: false,
            }],
        };
        let mut rf = wc_file();
        rf.arm_faults(FaultInjector::new(
            plan,
            ProtectionModel::Unprotected,
            false,
        ));
        rf.allocate_warp_with(WarpSlot(0), 1, &compressed_zero(), 0)
            .unwrap();
        let codec = BdiCodec::default();
        let v = WarpRegister::splat(4);
        write_retry(&mut rf, WarpSlot(0), 0, codec.compress(&v), 0);
        let sample = rf.try_read(WarpSlot(0), 0, 20).unwrap();
        assert_eq!(sample.fault, Some(FaultDisposition::SilentCorruption));
        assert_ne!(codec.decompress(&sample.register), v);
        // The golden read path still sees the clean stored value.
        let clean = rf.read(WarpSlot(0), 0, 21);
        assert_eq!(codec.decompress(clean.register), v);
        let log = rf.take_fault_log().unwrap();
        assert_eq!(log.silent(), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn secded_armed_injector_detects_double_flip() {
        use gpu_faults::{
            FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTarget, ProtectionModel,
        };
        let plan = FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                id: 0,
                at_write: 1,
                target: FaultTarget::Payload,
                kind: FaultKind::TransientDouble,
                bit_a: 1,
                bit_b: 2, // same 64-bit word as bit 1: double-error syndrome
                stuck_bank: 0,
                stuck_bit: 0,
                stuck_value: false,
            }],
        };
        let mut rf = wc_file();
        rf.arm_faults(FaultInjector::new(plan, ProtectionModel::SecDed, false));
        rf.allocate_warp_with(WarpSlot(0), 1, &compressed_zero(), 0)
            .unwrap();
        let codec = BdiCodec::default();
        write_retry(
            &mut rf,
            WarpSlot(0),
            0,
            codec.compress(&WarpRegister::splat(4)),
            0,
        );
        assert_eq!(
            rf.try_read(WarpSlot(0), 0, 20).unwrap_err(),
            ReadError::Uncorrectable
        );
        assert_eq!(rf.take_fault_log().unwrap().detected(), 1);
    }

    #[test]
    fn free_warp_allows_reallocation() {
        let mut rf = wc_file();
        rf.allocate_warp(WarpSlot(0), 4, 0).unwrap();
        rf.free_warp(WarpSlot(0), 10);
        rf.allocate_warp(WarpSlot(0), 4, 10).unwrap();
    }

    #[test]
    fn indicator_reflects_stored_form() {
        use bdi::CompressionIndicator;
        let mut rf = wc_file();
        rf.allocate_warp_with(WarpSlot(0), 1, &compressed_zero(), 0)
            .unwrap();
        assert_eq!(
            rf.indicator(WarpSlot(0), 0),
            Some(CompressionIndicator::Delta0)
        );
        let codec = BdiCodec::default();
        let v = WarpRegister::from_fn(|t| 100 + t as u32);
        write_retry(&mut rf, WarpSlot(0), 0, codec.compress(&v), 0);
        assert_eq!(
            rf.indicator(WarpSlot(0), 0),
            Some(CompressionIndicator::Delta1)
        );
        assert_eq!(rf.indicator(WarpSlot(1), 0), None);
    }
}
