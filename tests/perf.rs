//! Suite-wide validation of the static performance bounds.
//!
//! The acceptance bars for `wcsim perf`: every one of the 18 workloads
//! is sound (no measurement beats a static cycle / bank-access / energy
//! floor, and every guaranteed-conflict site's stall floor is met), and
//! the cycle bound is tight — at least half the measured cycles — on
//! the affine/uniform-heavy kernels the analysis exists to capture.

use warped_compression::{perf_suite, perf_workload, DesignPoint};
use warped_compression_suite::prelude::*;

#[test]
fn every_workload_bound_is_sound() {
    let reports = perf_suite(&suite()).expect("suite bounds cleanly");
    assert_eq!(reports.len(), 18);
    for r in &reports {
        assert!(
            r.comparison.measured_within_static_bound(),
            "{}: a measurement beat a static floor (cycles {} vs {}, accesses {} vs {})",
            r.kernel,
            r.comparison.static_cycles,
            r.comparison.measured_cycles,
            r.comparison.static_bank_accesses,
            r.comparison.measured_bank_accesses,
        );
        assert!(
            r.is_sound(),
            "{}: unsound conflict sites: {:?}",
            r.kernel,
            r.unsound_sites()
        );
        assert!(
            r.prediction.min_instructions <= r.measured_instructions,
            "{}: instruction floor {} beats measured {}",
            r.kernel,
            r.prediction.min_instructions,
            r.measured_instructions,
        );
    }
}

#[test]
fn uniform_kernels_get_tight_cycle_bounds() {
    // `lib`, `stencil` and `pathfinder` are uniform-control kernels
    // whose trip counts the launch-specialized tracer resolves
    // concretely; the dependence-DAG bound must recover at least half
    // of their measured cycles.
    for name in ["lib", "stencil", "pathfinder"] {
        let w = by_name(name).unwrap();
        let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(
            r.cycle_tightness() >= 0.5,
            "{name}: cycle tightness {:.2} below 0.5 ({} static vs {} measured)",
            r.cycle_tightness(),
            r.comparison.static_cycles,
            r.comparison.measured_cycles,
        );
        assert!(r.prediction.is_exact(), "{name}: tracer should be exact");
    }
}

#[test]
fn baseline_design_bounds_are_also_sound() {
    // The bound is design-aware: under the baseline point there is no
    // compression latency and every access touches all 8 banks.
    for name in ["lib", "bfs"] {
        let w = by_name(name).unwrap();
        let r = perf_workload(&w, DesignPoint::Baseline).unwrap();
        assert!(r.is_sound(), "{name} (baseline): {:?}", r.unsound_sites());
    }
}

#[test]
fn divergent_kernels_fall_back_soundly() {
    // Kernels with data-dependent branches use the serialized-path
    // floor; the bound must stay sound and the report must record the
    // approximation.
    let w = by_name("bfs").unwrap();
    let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
    assert!(r.is_sound());
    assert!(
        r.prediction.approx_warps > 0,
        "bfs diverges data-dependently; some warps must be approximate"
    );
}
