//! Soundness property test for the address abstract interpretation.
//!
//! For randomly generated kernels — straight-line, guaranteed-divergent
//! and cross-warp-aliasing, drawn from the shared
//! [`gpu_workloads::testgen`] generator — every concretely traced
//! memory access ([`gpu_sim::MemEvent`]) must lie inside the per-warp
//! abstract address set `simt_analysis::analyze_mem` computed for that
//! site, and the cross-warp race verdict must survive the trace: a
//! `race_free` kernel may trace no cross-warp conflicting pair, and
//! every traced pair must appear in the static race list otherwise.
//! This is the γ-membership obligation of the address domain checked
//! end to end through the real simulator's coalescer.

use gpu_workloads::testgen::{
    aliased_mem, aliased_mem_words, kernel_of, lane_split, raw_instr, straight_line,
    table_trip_count, trip_table_image, NUM_REGS,
};
use proptest::prelude::*;
use simt_analysis::{analyze_cells, analyze_mem, Cfg, LaunchInfo};
use simt_isa::Instruction;
use warped_compression_suite::prelude::*;

/// One traced touch of one word: which warp, at which pc, and whether
/// it wrote.
struct Touch {
    warp: (usize, usize),
    pc: usize,
    is_store: bool,
    addr: u32,
}

/// Runs one generated kernel with per-access tracing and checks every
/// traced address and the race verdict against the static analysis.
fn check_mem_soundness(instrs: Vec<Instruction>, blocks: usize, tpb: usize, mem_words: usize) {
    check_mem_soundness_with_image(instrs, blocks, tpb, vec![0; mem_words]);
}

/// As [`check_mem_soundness`], but starting from a non-trivial
/// initial-memory image armed on both sides, so the memcell value
/// refinement is computed — every traced *loaded value* at a refined
/// pc must then lie inside its refined abstract value (γ-containment
/// of the value domain, alongside the address-domain checks).
fn check_mem_soundness_with_image(
    instrs: Vec<Instruction>,
    blocks: usize,
    tpb: usize,
    image: Vec<u32>,
) {
    let kernel = kernel_of(instrs);
    let launch = LaunchConfig::new(blocks, tpb);
    let info = LaunchInfo {
        params: Vec::new(),
        blocks: u32::try_from(blocks).ok(),
        threads_per_block: u32::try_from(tpb).ok(),
        mem_words: u64::try_from(image.len()).ok(),
        initial_mem: Some(std::sync::Arc::new(image.clone())),
    };
    let cfg = Cfg::build(kernel.instrs());
    let mem = analyze_mem(kernel.name(), kernel.instrs(), NUM_REGS, &cfg, Some(&info));
    let cells = analyze_cells(
        kernel.name(),
        kernel.instrs(),
        usize::from(NUM_REGS),
        &cfg,
        Some(&info),
    );

    let mut memory = GlobalMemory::from_words(image);
    let mut touches: Vec<Touch> = Vec::new();
    GpuSim::new(DesignPoint::WarpedCompression.config())
        .run_mem_observed(&kernel, &launch, &mut memory, &mut |e| {
            let site = mem
                .site_index(e.pc)
                .unwrap_or_else(|| panic!("traced access at statically-unreachable pc {}", e.pc));
            let abs = mem
                .address_for(
                    site,
                    u32::try_from(e.block).unwrap(),
                    u32::try_from(e.warp_in_block).unwrap(),
                )
                .unwrap_or_else(|| {
                    panic!(
                        "warp ({}, {}) traced at pc {} was proven unreachable",
                        e.block, e.warp_in_block, e.pc
                    )
                });
            assert!(
                abs.contains_masked(&e.addrs, e.mask),
                "pc {}: traced addresses escape the abstract set {abs}",
                e.pc
            );
            if !e.is_store {
                if let Some(refined) = cells.refined.get(&e.pc) {
                    assert!(
                        refined.contains_masked(&e.values, e.mask),
                        "pc {}: traced load values escape the refined value {refined}",
                        e.pc
                    );
                }
            }
            for (_, addr) in e.active_addrs() {
                touches.push(Touch {
                    warp: (e.block, e.warp_in_block),
                    pc: e.pc,
                    is_store: e.is_store,
                    addr,
                });
            }
        })
        .expect("generated kernels run to completion");

    let Some(race_free) = mem.race_free else {
        return;
    };
    for a in &touches {
        if !a.is_store {
            continue;
        }
        for b in &touches {
            if a.warp == b.warp || a.addr != b.addr {
                continue;
            }
            assert!(
                !race_free,
                "traced cross-warp conflict @{} vs @{} under a race-free verdict",
                a.pc, b.pc
            );
            assert!(
                mem.races
                    .iter()
                    .any(|r| r.store_pc == a.pc && r.other_pc == b.pc),
                "traced cross-warp conflict @{} vs @{} missing from the static race list",
                a.pc,
                b.pc
            );
        }
    }
}

proptest! {
    #[test]
    fn straight_line_accesses_stay_inside_abstract_sets(
        raw in prop::collection::vec(raw_instr(), 1..8),
    ) {
        check_mem_soundness(straight_line(&raw, true), 1, 32, 4);
    }

    #[test]
    fn divergent_accesses_stay_inside_abstract_sets(
        split in any::<u8>(),
        body in prop::collection::vec(raw_instr(), 1..5),
        suffix in prop::collection::vec(raw_instr(), 0..3),
    ) {
        check_mem_soundness(lane_split(split, &body, &suffix, true), 2, 32, 4);
    }

    /// Loops whose trip count is *loaded* from the initial-memory
    /// image: the memcell refinement bounds the counter, and every
    /// traced load value must stay inside its refined abstract value.
    #[test]
    fn table_trip_count_values_stay_inside_refined_cells(
        slot in any::<u8>(),
        raw_table in prop::collection::vec(any::<u32>(), 4),
        body in prop::collection::vec(raw_instr(), 1..5),
        suffix in prop::collection::vec(raw_instr(), 0..3),
    ) {
        check_mem_soundness_with_image(
            table_trip_count(slot, &body, &suffix, true),
            1, 32,
            trip_table_image(&raw_table),
        );
    }

    #[test]
    fn aliasing_kernels_respect_the_race_verdict(
        mask in any::<u8>(),
        split in 0u8..=30,
        body in prop::collection::vec(raw_instr(), 1..5),
    ) {
        let (blocks, tpb) = (2usize, 64usize);
        let mem_words = aliased_mem_words(blocks, tpb);
        let wpb = tpb.div_ceil(32);
        check_mem_soundness(aliased_mem(mask, split, &body, wpb, true), blocks, tpb, mem_words);
    }
}
