//! End-to-end gates for the static memory analysis (`wcsim mem`).
//!
//! Two obligations, machine-checked through the real pipeline:
//!
//! 1. **The 18/18 suite gate** — every benchmark's traced accesses
//!    stay inside their abstract address sets, the cross-warp race
//!    verdict survives the trace, every perfbound memory floor holds,
//!    and each scheduler fallback names its bail reason.
//! 2. **Verdict stability** — the per-kernel race verdicts and
//!    per-site coalescing patterns are pinned below. They are facts
//!    about the suite kernels, not tuning knobs: a change here means
//!    the abstract domain got sharper (update the table deliberately)
//!    or broke (fix it).

use warped_compression::mem_suite;
use warped_compression_suite::prelude::*;

/// The documented verdicts: kernel, cross-warp race verdict
/// (`Some(true)` = proven warp-isolated), and each load/store site's
/// coalescing pattern in pc order.
const EXPECTED: [(&str, Option<bool>, &[&str]); 18] = [
    (
        "backprop",
        Some(false),
        &["coalesced", "uniform", "coalesced"],
    ),
    (
        "bfs",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "scattered",
            "scattered",
        ],
    ),
    (
        "dwt2d",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "scattered",
            "coalesced",
            "coalesced",
        ],
    ),
    (
        "gaussian",
        Some(false),
        &["coalesced", "uniform", "coalesced", "coalesced"],
    ),
    (
        "histo",
        Some(false),
        &["coalesced", "scattered", "coalesced"],
    ),
    (
        "hotspot",
        Some(true),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
        ],
    ),
    (
        "kmeans",
        Some(false),
        &[
            "coalesced",
            "uniform",
            "coalesced",
            "coalesced",
            "coalesced",
        ],
    ),
    (
        "lavamd",
        Some(false),
        &["coalesced", "strided", "scattered", "coalesced"],
    ),
    (
        "lud",
        Some(false),
        &["uniform", "coalesced", "coalesced", "coalesced"],
    ),
    (
        "mri-q",
        Some(false),
        &["coalesced", "uniform", "scattered", "coalesced"],
    ),
    (
        "nw",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "scattered",
            "coalesced",
        ],
    ),
    (
        "pathfinder",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "scattered",
            "coalesced",
        ],
    ),
    (
        "sgemm",
        Some(false),
        &["scattered", "scattered", "coalesced"],
    ),
    (
        "srad",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
        ],
    ),
    (
        "stencil",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
            "coalesced",
        ],
    ),
    (
        "spmv",
        Some(false),
        &[
            "coalesced",
            "coalesced",
            "scattered",
            "scattered",
            "scattered",
            "coalesced",
        ],
    ),
    (
        "aes",
        Some(false),
        &["coalesced", "scattered", "uniform", "coalesced"],
    ),
    ("lib", Some(false), &["uniform", "uniform", "coalesced"]),
];

#[test]
fn suite_mem_joins_soundly_18_of_18() {
    let reports = mem_suite(&suite()).expect("suite simulates cleanly");
    assert_eq!(reports.len(), 18);
    for r in &reports {
        assert!(
            r.is_sound(),
            "kernel `{}` broke the static memory analysis: {:?}",
            r.kernel,
            r.violations()
        );
        // Every traced cross-warp conflict must have been predicted.
        assert!(
            r.traced_conflicts.iter().all(|c| c.predicted),
            "kernel `{}` traced an unpredicted conflict",
            r.kernel
        );
        // Refined loads are machine-checked per lane: any traced value
        // outside its refined abstract value is an unsound miss.
        assert_eq!(
            r.refined_value_escapes, 0,
            "kernel `{}` traced a load value outside its memcell refinement",
            r.kernel
        );
        // Fallbacks attribute themselves to a named bail reason and pc.
        if !r.schedule.static_mode {
            assert!(
                r.schedule.bail.is_some(),
                "kernel `{}` fell back without naming its bail",
                r.kernel
            );
            assert!(
                r.schedule.bail_pc.is_some(),
                "kernel `{}` fell back without a bail pc",
                r.kernel
            );
        }
    }
    // The memcell refinement must keep the fallback set at the two
    // genuinely data-dependent kernels — a new fallback is a
    // capability regression (the pre-memcell scheduler closed 12/18).
    let fallbacks: Vec<&str> = reports
        .iter()
        .filter(|r| !r.schedule.static_mode)
        .map(|r| r.kernel.as_str())
        .collect();
    assert_eq!(
        fallbacks,
        ["bfs", "histo"],
        "the scheduler fallback set regressed"
    );
    let static_count = reports.iter().filter(|r| r.schedule.static_mode).count();
    assert!(
        static_count >= 16,
        "only {static_count}/18 kernels scheduled statically"
    );
    // The refinement itself must stay live: the kernels it converted
    // (kmeans, lavamd, srad, spmv) all carry refined loads.
    let refined: usize = reports.iter().map(|r| r.refined_loads).sum();
    assert!(
        refined > 0,
        "no suite load was refined by the memcell domain"
    );
}

#[test]
fn suite_race_and_coalescing_verdicts_are_stable() {
    let reports = mem_suite(&suite()).expect("suite simulates cleanly");
    assert_eq!(reports.len(), EXPECTED.len());
    for (r, (name, race_free, patterns)) in reports.iter().zip(EXPECTED) {
        assert_eq!(r.kernel, name, "suite order changed");
        assert_eq!(
            r.race_free, race_free,
            "`{name}`: race verdict changed — update the documented table deliberately"
        );
        let got: Vec<&str> = r.sites.iter().map(|s| s.pattern.as_str()).collect();
        assert_eq!(
            got, *patterns,
            "`{name}`: coalescing patterns changed — update the documented table deliberately"
        );
    }
    // The suite covers both definite verdicts and all four patterns.
    assert!(EXPECTED.iter().any(|(_, rf, _)| *rf == Some(true)));
    for pattern in ["uniform", "coalesced", "strided", "scattered"] {
        assert!(
            EXPECTED.iter().any(|(_, _, ps)| ps.contains(&pattern)),
            "no suite kernel exhibits a {pattern} access"
        );
    }
}
