//! Fault-injection integration tests (`cargo test --features faults`).
//!
//! These exercise the full stack the `wcsim faults` subcommand is built
//! on: the seeded fault campaign must be bit-for-bit deterministic, the
//! resilient runner must isolate a panicking item without losing the
//! other kernels' results, and the cycle-budget watchdog must classify
//! runaway runs as timeouts instead of generic failures. With the
//! `sanitize` feature also on, the shadow register file cross-checks
//! every fault classification the injector makes.

#![cfg(feature = "faults")]

use gpu_faults::ProtectionModel;
use gpu_workloads::{by_name, suite, Workload};
use warped_compression::{
    run_fault_campaign, run_many_resilient, run_suite_resilient, DesignPoint, RunPolicy, RunStatus,
    DEFAULT_FAULT_SEED,
};

/// Same campaign seed ⇒ identical records, field for field — the
/// property `wcsim faults` relies on for byte-identical reports.
#[test]
fn fault_campaign_is_deterministic_for_equal_seeds() {
    let workloads: Vec<Workload> = ["lib", "aes", "pathfinder"]
        .iter()
        .map(|n| by_name(n).expect("workload exists"))
        .collect();
    let policy = RunPolicy::default();
    let run = || {
        run_fault_campaign(
            &workloads,
            ProtectionModel::SecDed,
            6,
            DEFAULT_FAULT_SEED,
            &policy,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 3);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.name, rb.name);
        assert_eq!(ra.status, rb.status, "{}: status must be stable", ra.name);
        assert_eq!(ra.output, rb.output, "{}: report must be stable", ra.name);
        let report = ra.output.as_ref().expect("SEC-DED campaign completes");
        assert_eq!(
            report.log.events.len(),
            6,
            "{}: every fault accounted",
            ra.name
        );
        assert_eq!(
            report.log.silent(),
            0,
            "{}: ECC masks single-bit flips",
            ra.name
        );
    }
}

/// A deliberately panicking 19th item must not cost the 18 real
/// workloads their results: the report degrades to partial, in input
/// order, with the panic captured in its record.
#[test]
fn panicking_item_yields_partial_report_for_the_rest() {
    let mut names: Vec<String> = suite().iter().map(|w| w.name().to_string()).collect();
    names.insert(4, "poison".to_string());
    let cfg = DesignPoint::WarpedCompression.config();
    let records = run_many_resilient(
        &names,
        &|n: &String| n.clone(),
        &|n: &String| {
            if n == "poison" {
                panic!("deliberate test panic");
            }
            let w = by_name(n).expect("workload exists");
            let mut memory = w.fresh_memory();
            gpu_sim::GpuSim::new(cfg.clone()).run(w.kernel(), w.launch(), &mut memory)
        },
        &RunPolicy::default(),
    );
    assert_eq!(records.len(), 19);
    for (record, name) in records.iter().zip(&names) {
        assert_eq!(&record.name, name, "records stay in input order");
    }
    let (poisoned, rest): (Vec<_>, Vec<_>) = records.iter().partition(|r| r.name == "poison");
    match &poisoned[0].status {
        RunStatus::Panicked { message, .. } => {
            assert!(message.contains("deliberate test panic"), "got: {message}");
        }
        other => panic!("poison item must be recorded as panicked, got {other:?}"),
    }
    assert_eq!(rest.len(), 18);
    for r in rest {
        assert!(r.status.is_ok(), "{} must survive the poison item", r.name);
        assert!(r.output.is_some());
    }
}

/// The watchdog clamps the simulator's cycle cap and reports the
/// breach as a timeout, not a generic failure.
#[test]
fn watchdog_classifies_runaway_runs_as_timeouts() {
    let bfs = by_name("bfs").expect("workload exists");
    let policy = RunPolicy {
        cycle_budget: Some(10),
        ..RunPolicy::default()
    };
    let records = run_suite_resilient(&DesignPoint::WarpedCompression.config(), &[bfs], &policy);
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].status, RunStatus::TimedOut { budget: 10 });
    assert!(records[0].output.is_none());
}

/// Negative test: the sanitizer's shadow register file must *detect* an
/// unprotected flip — `matches` is the primitive the simulator uses to
/// cross-check the injector's silent-corruption classification.
#[cfg(feature = "sanitize")]
#[test]
fn shadow_file_catches_an_unprotected_flip() {
    use bdi::WarpRegister;
    use gpu_regfile::{ShadowRegisterFile, WarpSlot};

    let mut shadow = ShadowRegisterFile::new();
    let slot = WarpSlot(0);
    shadow.allocate_warp(slot, 4, WarpRegister::from_fn(|_| 0));
    let clean = WarpRegister::from_fn(|tid| 0x800 + tid as u32);
    shadow.record_write(slot, 2, &clean);
    assert!(shadow.matches(slot, 2, &clean));

    let mut flipped = clean;
    flipped.set_lane(7, flipped.lane(7) ^ (1 << 13));
    assert!(
        !shadow.matches(slot, 2, &flipped),
        "a single-bit flip must not slip past the shadow file"
    );
}

/// With `sanitize` on, the simulator asserts every silent corruption
/// the injector reports really did diverge from the shadow value (and
/// every clean read really is clean) — so an unprotected campaign
/// completing *is* the cross-check passing.
#[cfg(feature = "sanitize")]
#[test]
fn unprotected_campaign_classifications_survive_sanitizer_cross_check() {
    let workloads = vec![by_name("pathfinder").expect("workload exists")];
    let records = run_fault_campaign(
        &workloads,
        ProtectionModel::Unprotected,
        8,
        DEFAULT_FAULT_SEED,
        &RunPolicy::default(),
    );
    assert_eq!(records.len(), 1);
    // A corrupted address register may legitimately fault downstream;
    // what must NOT happen is a sanitizer panic (misclassification).
    match &records[0].status {
        RunStatus::Completed { .. } | RunStatus::Failed { .. } => {}
        other => panic!("expected completion or a reported fault, got {other:?}"),
    }
}
