//! Suite-wide validation of the static compressibility prediction.
//!
//! The acceptance bars for `wcsim predict`: zero unsound misses across
//! all 18 workloads, a conservative static gateable-bank bound for
//! every kernel, a high exact-site fraction on the affine/uniform-heavy
//! kernels, and uniform-branch verdicts that agree with the simulator's
//! divergence counters.

use simt_analysis::analyze;
use warped_compression::{predict_suite, run_workload, DesignPoint};
use warped_compression_suite::prelude::*;

#[test]
fn no_workload_has_an_unsound_site() {
    let reports = predict_suite(&suite()).expect("suite predicts cleanly");
    assert_eq!(reports.len(), 18);
    for r in &reports {
        assert_eq!(
            r.unsound_count(),
            0,
            "{}: a write stored a larger form than statically predicted: {:?}",
            r.kernel,
            r.sites
                .iter()
                .filter(|s| s.outcome == warped_compression::SiteOutcome::UnsoundMiss)
                .collect::<Vec<_>>()
        );
        assert!(
            r.comparison.measured_within_static_bound(),
            "{}: static bound {} exceeds measured gated banks {}",
            r.kernel,
            r.comparison.static_gateable_banks_per_write,
            r.comparison.measured_gated_banks_per_write
        );
        assert!(r.is_sound(), "{}", r.kernel);
    }
}

#[test]
fn affine_heavy_kernels_get_mostly_exact_classes() {
    // `lib` and `pathfinder` are built from uniform scalars and affine
    // thread-index arithmetic — the shapes the abstract domain exists
    // to capture. The prediction must be exact (and informative) on a
    // solid majority of their write sites.
    for name in ["lib", "pathfinder"] {
        let w = by_name(name).unwrap();
        let r = warped_compression::predict_workload(&w).unwrap();
        assert!(
            r.exact_fraction() >= 0.6,
            "{name}: exact fraction {:.2} below 0.6",
            r.exact_fraction()
        );
        assert!(
            r.prediction.informative_fraction() >= 0.6,
            "{name}: informative fraction {:.2} below 0.6",
            r.prediction.informative_fraction()
        );
    }
}

#[test]
fn uniform_branch_verdicts_agree_with_divergence_counters() {
    // Static claim: a kernel whose every branch is provably uniform
    // never issues a divergent instruction. Checked against the
    // simulator's own counter for all 18 workloads.
    let mut saw_all_uniform = false;
    let mut saw_divergent = false;
    for w in suite() {
        let prediction = analyze(w.kernel()).prediction.expect("workloads verify");
        let all_uniform = prediction.branches.iter().all(|b| b.uniform);
        let run = run_workload(&DesignPoint::WarpedCompression.config(), &w).unwrap();
        if all_uniform {
            saw_all_uniform = true;
            assert_eq!(
                run.stats.divergent_instructions,
                0,
                "{}: every branch is statically uniform, yet the run diverged",
                w.name()
            );
        } else {
            saw_divergent = true;
        }
    }
    // The suite must exercise both sides of the cross-check.
    assert!(saw_all_uniform, "no workload is fully uniform");
    assert!(saw_divergent, "no workload has a non-uniform branch");
}

#[test]
fn bfs_diverges_and_its_branch_is_not_called_uniform() {
    let w = by_name("bfs").unwrap();
    let prediction = analyze(w.kernel()).prediction.unwrap();
    assert!(
        prediction.branches.iter().any(|b| !b.uniform),
        "bfs has a per-thread loop; some branch must be non-uniform"
    );
    let run = run_workload(&DesignPoint::WarpedCompression.config(), &w).unwrap();
    assert!(run.stats.divergent_instructions > 0);
}
