//! Cross-crate integration tests: the full stack from kernel source to
//! energy report, checking the paper's headline claims hold
//! qualitatively on the whole suite.

use warped_compression_suite::prelude::*;
use warped_compression_suite::wc::RunOutput;

fn run_all(point: DesignPoint) -> Vec<RunOutput> {
    warped_compression_suite::wc::run_suite(&point.config(), &suite()).expect("suite runs cleanly")
}

#[test]
fn every_workload_runs_under_both_designs() {
    let base = run_all(DesignPoint::Baseline);
    let wc = run_all(DesignPoint::WarpedCompression);
    assert_eq!(base.len(), 18);
    assert_eq!(wc.len(), 18);
    for (b, w) in base.iter().zip(&wc) {
        assert_eq!(b.name, w.name);
        assert!(b.stats.cycles > 0 && w.stats.cycles > 0);
        // Program instruction counts must match: compression never
        // changes the executed program, only injects MOVs.
        assert_eq!(b.stats.instructions, w.stats.instructions, "{}", b.name);
        assert_eq!(
            b.stats.synthetic_movs, 0,
            "{}: baseline must not inject MOVs",
            b.name
        );
    }
}

#[test]
fn headline_claim_energy_saving_on_suite_average() {
    // Paper: 25% register-file energy saving on average (Fig. 9).
    // Shape target: a clearly positive double-digit average saving.
    let base = run_all(DesignPoint::Baseline);
    let wc = run_all(DesignPoint::WarpedCompression);
    let params = EnergyParams::paper_table3();
    let savings: Vec<f64> = base
        .iter()
        .zip(&wc)
        .map(|(b, w)| energy_of(&w.stats, &params).savings_vs(&energy_of(&b.stats, &params)))
        .collect();
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(avg > 0.10, "average saving {avg:.3} too small: {savings:?}");
    // Every benchmark must at least not lose energy badly.
    for (s, r) in savings.iter().zip(&base) {
        assert!(*s > -0.05, "{} regressed: {s:.3}", r.name);
    }
}

#[test]
fn headline_claim_negligible_performance_impact() {
    // Paper: 0.1% average slowdown at default latencies (Fig. 13). Our
    // kernels are far smaller than the CUDA originals so pipeline-depth
    // effects hide less; the shape target is "small, within a few
    // percent, never catastrophic".
    let base = run_all(DesignPoint::Baseline);
    let wc = run_all(DesignPoint::WarpedCompression);
    let ratios: Vec<f64> = base
        .iter()
        .zip(&wc)
        .map(|(b, w)| w.stats.cycles as f64 / b.stats.cycles as f64)
        .collect();
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        avg < 1.05,
        "average slowdown {avg:.3} too large: {ratios:?}"
    );
    for (r, b) in ratios.iter().zip(&base) {
        assert!(*r < 1.15, "{}: slowdown {r:.3}", b.name);
    }
}

#[test]
fn divergent_compression_ratio_is_lower() {
    // Paper Fig. 8: non-divergent ~2.5, divergent ~1.3 — measured under
    // the decompress-merge-recompress assumption as the paper does.
    let wc = run_all(DesignPoint::DecompressMergeRecompress);
    let nondiv: Vec<f64> = wc
        .iter()
        .map(|r| r.stats.compression_ratio_nondiv())
        .collect();
    let div: Vec<f64> = wc
        .iter()
        .filter_map(|r| r.stats.compression_ratio_div())
        .collect();
    let nondiv_avg = nondiv.iter().sum::<f64>() / nondiv.len() as f64;
    let div_avg = div.iter().sum::<f64>() / div.len() as f64;
    assert!(nondiv_avg > 1.8, "non-divergent ratio {nondiv_avg:.2}");
    assert!(
        div_avg < nondiv_avg,
        "divergent {div_avg:.2} should be below non-divergent {nondiv_avg:.2}"
    );
}

#[test]
fn mov_overhead_is_small() {
    // Paper Fig. 11: dummy MOVs < 2% of instructions. Our kernels are
    // tiny, so the per-divergence-episode MOV cost is amortised over far
    // fewer instructions; the shape target is "a small single-digit
    // percentage, dominated by the divergence-heavy benchmarks".
    let wc = run_all(DesignPoint::WarpedCompression);
    let mut fractions: Vec<f64> = Vec::new();
    for r in &wc {
        assert!(
            r.stats.mov_fraction() < 0.06,
            "{}: MOV fraction {:.3}",
            r.name,
            r.stats.mov_fraction()
        );
        fractions.push(r.stats.mov_fraction());
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(avg < 0.03, "average MOV fraction {avg:.3}");
}

#[test]
fn divergence_profiles_hold() {
    use warped_compression_suite::workloads::DivergenceProfile;
    let wc = run_all(DesignPoint::WarpedCompression);
    for (w, r) in suite().iter().zip(&wc) {
        let nondiv = r.stats.nondivergent_ratio();
        match w.divergence() {
            DivergenceProfile::None => {
                assert_eq!(
                    r.stats.divergent_instructions,
                    0,
                    "{} must not diverge",
                    w.name()
                )
            }
            DivergenceProfile::Low => {
                assert!(
                    r.stats.divergent_instructions > 0,
                    "{} should diverge a little",
                    w.name()
                );
                assert!(nondiv > 0.5, "{}: nondiv {nondiv:.2}", w.name());
            }
            DivergenceProfile::High => {
                assert!(
                    nondiv < 0.9,
                    "{}: expected heavy divergence, nondiv {nondiv:.2}",
                    w.name()
                )
            }
        }
    }
}

#[test]
fn results_identical_across_designs() {
    // Compression must be semantically invisible: memory contents after
    // a run match the baseline exactly, for every workload.
    for w in suite() {
        let mut m_base = w.fresh_memory();
        let mut m_wc = w.fresh_memory();
        GpuSim::new(DesignPoint::Baseline.config())
            .run(w.kernel(), w.launch(), &mut m_base)
            .unwrap();
        GpuSim::new(DesignPoint::WarpedCompression.config())
            .run(w.kernel(), w.launch(), &mut m_wc)
            .unwrap();
        assert_eq!(m_base, m_wc, "{}: compression changed results", w.name());
    }
}

#[test]
fn lrr_scheduler_matches_results_too() {
    for name in ["pathfinder", "bfs"] {
        let w = by_name(name).unwrap();
        let mut m_gto = w.fresh_memory();
        let mut m_lrr = w.fresh_memory();
        GpuSim::new(DesignPoint::WarpedCompression.config())
            .run(w.kernel(), w.launch(), &mut m_gto)
            .unwrap();
        GpuSim::new(DesignPoint::WarpedCompressionLrr.config())
            .run(w.kernel(), w.launch(), &mut m_lrr)
            .unwrap();
        assert_eq!(m_gto, m_lrr, "{name}: scheduler changed results");
    }
}

#[test]
fn dmr_policy_matches_results_and_avoids_movs() {
    for name in ["dwt2d", "bfs"] {
        let w = by_name(name).unwrap();
        let mut m_uw = w.fresh_memory();
        let mut m_dmr = w.fresh_memory();
        let uw = GpuSim::new(DesignPoint::WarpedCompression.config())
            .run(w.kernel(), w.launch(), &mut m_uw)
            .unwrap();
        let dmr = GpuSim::new(DesignPoint::DecompressMergeRecompress.config())
            .run(w.kernel(), w.launch(), &mut m_dmr)
            .unwrap();
        assert_eq!(m_uw, m_dmr, "{name}: divergence policy changed results");
        assert_eq!(
            dmr.stats.synthetic_movs, 0,
            "{name}: DMR must not inject MOVs"
        );
        assert!(uw.stats.synthetic_movs > 0, "{name}: UW should inject MOVs");
    }
}

#[test]
fn similarity_matches_compressibility() {
    // A workload whose writes are mostly non-random must compress well;
    // lib (constant inputs) is the extreme case the paper highlights.
    let wc = run_all(DesignPoint::WarpedCompression);
    let lib = wc.iter().find(|r| r.name == "lib").unwrap();
    assert!(lib.similarity.nonrandom_fraction(false) > 0.9);
    assert!(lib.stats.compression_ratio_nondiv() > 5.0);
    let aes = wc.iter().find(|r| r.name == "aes").unwrap();
    assert!(
        aes.similarity.nonrandom_fraction(false) < lib.similarity.nonrandom_fraction(false),
        "aes must be less similar than lib"
    );
}
