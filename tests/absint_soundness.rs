//! Soundness property test for the warp-value abstract interpreter.
//!
//! For randomly generated kernels — straight-line, single-branch and
//! guaranteed-divergent, drawn from the shared
//! [`gpu_workloads::testgen`] generator — every concretely observed
//! register write must lie inside the abstract value the interpreter
//! computed for that write site (`AbsVal::contains`), and the form the
//! simulator actually stored must never need more banks than the
//! statically predicted class. This is the γ-membership obligation of
//! the abstract domain checked end to end through the real pipeline:
//! divergence, partial-write merges and dummy-MOV injection included.

use gpu_workloads::testgen::{
    kernel_of, lane_split, raw_instr, skip_if_zero, straight_line, table_trip_count,
    trip_table_image, NUM_REGS,
};
use proptest::prelude::*;
use simt_analysis::{analyze_instrs_with_launch, LaunchInfo};
use simt_isa::Instruction;
use warped_compression_suite::prelude::*;

/// Runs one generated kernel through the simulator and checks every
/// observed write against the abstract interpretation.
fn check_soundness(instrs: Vec<Instruction>) {
    check_soundness_with_image(instrs, vec![0; 4]);
}

/// As [`check_soundness`], but with a non-trivial initial-memory image
/// armed on both sides: the simulator starts from it, and the analysis
/// receives it so the memcell domain refines loads — the γ-membership
/// check then covers refined values too.
fn check_soundness_with_image(instrs: Vec<Instruction>, image: Vec<u32>) {
    let kernel = kernel_of(instrs.clone());
    let launch = LaunchConfig::new(1, 32);
    let mut memory = GlobalMemory::from_words(image.clone());
    let mut events: Vec<(usize, WarpRegister, bdi::CompressionClass)> = Vec::new();
    GpuSim::new(DesignPoint::WarpedCompression.config())
        .run_observed(&kernel, &launch, &mut memory, &mut |e| {
            if !e.synthetic {
                events.push((e.pc, e.value, e.class));
            }
        })
        .expect("generated kernels run to completion");

    let info = LaunchInfo {
        params: Vec::new(),
        blocks: Some(1),
        threads_per_block: Some(32),
        mem_words: Some(image.len() as u64),
        initial_mem: Some(std::sync::Arc::new(image)),
    };
    let analysis = analyze_instrs_with_launch("prop", &instrs, NUM_REGS, Some(&info));
    let prediction = analysis
        .prediction
        .expect("generated kernels have no structural errors");

    assert!(
        !events.is_empty(),
        "every generated kernel writes something"
    );
    for (pc, value, stored) in &events {
        let site = prediction
            .site_at(*pc)
            .unwrap_or_else(|| panic!("write retired at pc {pc} without a predicted site"));
        assert!(
            site.value.contains(value.as_lanes()),
            "pc {pc}: concrete write {:?} escapes abstract value {} (class {})",
            value.lanes().collect::<Vec<_>>(),
            site.value,
            site.class.name(),
        );
        assert!(
            stored.banks() <= site.class.banks(),
            "pc {pc}: stored form {} needs {} banks, predicted class {} allows {}",
            stored.name(),
            stored.banks(),
            site.class.name(),
            site.class.banks(),
        );
    }
}

proptest! {
    #[test]
    fn straight_line_kernels_stay_inside_abstract_values(
        raw in prop::collection::vec(raw_instr(), 1..10),
    ) {
        check_soundness(straight_line(&raw, true));
    }

    #[test]
    fn single_branch_kernels_stay_inside_abstract_values(
        prefix in prop::collection::vec(raw_instr(), 1..6),
        body in prop::collection::vec(raw_instr(), 1..5),
        suffix in prop::collection::vec(raw_instr(), 0..4),
        pred in any::<u8>(),
    ) {
        check_soundness(skip_if_zero(&prefix, &body, &suffix, pred, true));
    }

    #[test]
    fn guaranteed_divergence_stays_inside_abstract_values(
        split in any::<u8>(),
        body in prop::collection::vec(raw_instr(), 1..5),
        suffix in prop::collection::vec(raw_instr(), 0..4),
    ) {
        check_soundness(lane_split(split, &body, &suffix, true));
    }

    /// Loops whose trip count is *loaded* from the initial-memory
    /// image: the memcell refinement is what bounds the counter, so
    /// this shape checks refined loads end to end.
    #[test]
    fn table_trip_count_kernels_stay_inside_abstract_values(
        slot in any::<u8>(),
        raw_table in prop::collection::vec(any::<u32>(), 4),
        body in prop::collection::vec(raw_instr(), 1..5),
        suffix in prop::collection::vec(raw_instr(), 0..4),
    ) {
        check_soundness_with_image(
            table_trip_count(slot, &body, &suffix, true),
            trip_table_image(&raw_table),
        );
    }
}
