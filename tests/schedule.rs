//! End-to-end gates for the static issue scheduler.
//!
//! Three obligations, machine-checked through the real pipeline:
//!
//! 1. **The 18/18 suite gate** — every benchmark either replays its
//!    static issue plan bit-identically within `[perfbound floor,
//!    dynamic + slack]`, or falls back to the dynamic engine with an
//!    explicit bail reason. Any unsound kernel fails the suite.
//! 2. **Random kernels** — straight-line, uniform-loop and nested-loop
//!    kernels from the shared [`gpu_workloads::testgen`] generator are
//!    scheduled and replayed under both design points; final registers
//!    and memory must match the dynamic core exactly and the makespan
//!    must respect both cycle bounds.
//! 3. **Lint cross-check** — every `UnknownPredicate` bail pc the
//!    scheduler reports must be flagged by the `unschedulable-region`
//!    lint (the lint over-approximates the bail set), on a hand-built
//!    load-tainted kernel and across the whole suite.

use gpu_workloads::testgen::{
    counted_loop, kernel_of, nested_counted_loops, raw_instr, straight_line,
};
use proptest::prelude::*;
use simt_analysis::{
    analyze_with_launch, bound_kernel, schedule_kernel, LaunchInfo, LintKind, PerfLaunch,
    ScheduleBail,
};
use simt_isa::{Instruction, Kernel};
use warped_compression::{
    perf_machine, schedule_slack, schedule_suite, schedule_workload, ScheduleMode,
};
use warped_compression_suite::prelude::*;

#[test]
fn suite_schedules_soundly_18_of_18() {
    let workloads = suite();
    let reports = schedule_suite(&workloads).expect("suite simulates cleanly");
    assert_eq!(reports.len(), 18);
    for r in &reports {
        assert!(
            r.is_sound(),
            "kernel `{}` is unsound: {:?} (floor {} scheduled {} dynamic {} slack {})",
            r.kernel,
            r.violations(),
            r.static_floor_cycles,
            r.scheduled_cycles,
            r.dynamic_cycles,
            r.slack_cycles,
        );
    }
    // The scheduler must keep closing the statically resolvable
    // majority of the suite — a drop below this floor means a
    // capability regression, not a soundness bug. With the memcell
    // value refinement, only the two genuinely data-dependent kernels
    // (bfs, histo) may fall back.
    let fallbacks: Vec<&str> = reports
        .iter()
        .filter(|r| !r.mode.is_static())
        .map(|r| r.kernel.as_str())
        .collect();
    assert_eq!(
        fallbacks,
        ["bfs", "histo"],
        "the scheduler fallback set regressed"
    );
    let static_count = reports.iter().filter(|r| r.mode.is_static()).count();
    assert!(
        static_count >= 16,
        "only {static_count}/18 kernels scheduled statically"
    );
    // Data-dependent control flow must keep falling back explicitly,
    // with a named reason that carries the bail pc.
    for name in ["bfs", "histo"] {
        let r = reports.iter().find(|r| r.kernel == name).unwrap();
        let ScheduleMode::DynamicFallback { reason } = &r.mode else {
            panic!("`{name}` must fall back dynamically");
        };
        assert!(
            reason.contains("not statically resolvable") && reason.contains('@'),
            "`{name}` bail must name its reason and pc: {reason}"
        );
    }
}

#[test]
fn fallback_reports_match_the_dynamic_engine_exactly() {
    let w = by_name("histo").unwrap();
    let r = schedule_workload(&w, DesignPoint::WarpedCompression).unwrap();
    assert!(!r.mode.is_static());
    assert_eq!(r.scheduled_cycles, r.dynamic_cycles);
    assert_eq!(r.scheduled_instructions, r.dynamic_instructions);
    assert!((r.comparison.energy_ratio() - 1.0).abs() < 1e-12);
}

/// Schedules one generated kernel, replays it, and checks bit identity
/// plus both cycle bounds against the dynamic core.
fn check_design(instrs: &[Instruction], design: DesignPoint) {
    let kernel = kernel_of(instrs.to_vec());
    let cfg = design.config();
    let machine = perf_machine(&cfg);
    let sim = GpuSim::new(cfg);
    let launch = LaunchConfig::new(1, 32);
    let perf_launch = PerfLaunch::new(1, 32);

    let plan = schedule_kernel(
        &kernel,
        &perf_launch,
        &machine,
        sim.max_resident_warps(&kernel),
    )
    .expect("uniform generated kernels are statically schedulable");

    let mut dyn_mem = GlobalMemory::zeroed(4);
    let (dyn_result, dyn_regs) = sim
        .run_capturing(&kernel, &launch, &mut dyn_mem)
        .expect("generated kernels run to completion");
    let mut sched_mem = GlobalMemory::zeroed(4);
    let sched = sim
        .run_scheduled(&kernel, &plan, &launch, &mut sched_mem)
        .expect("sound plans replay cleanly");

    assert_eq!(
        sched.final_regs,
        dyn_regs,
        "{}: scheduled registers diverge from the dynamic core",
        machine_label(&plan.kernel, design),
    );
    assert_eq!(sched_mem, dyn_mem);
    let floor = bound_kernel(&kernel, &perf_launch, &machine).cycle_lower_bound;
    assert!(
        floor <= sched.stats.cycles,
        "{}: schedule ({}) beats the static floor ({floor})",
        machine_label(&plan.kernel, design),
        sched.stats.cycles,
    );
    let budget = dyn_result.stats.cycles + schedule_slack(dyn_result.stats.cycles);
    assert!(
        sched.stats.cycles <= budget,
        "{}: schedule ({}) exceeds dynamic ({}) + slack",
        machine_label(&plan.kernel, design),
        sched.stats.cycles,
        dyn_result.stats.cycles,
    );
}

fn machine_label(kernel: &str, design: DesignPoint) -> String {
    format!("{kernel} under {}", design.label())
}

fn check_both_designs(instrs: Vec<Instruction>) {
    check_design(&instrs, DesignPoint::Baseline);
    check_design(&instrs, DesignPoint::WarpedCompression);
}

proptest! {
    #[test]
    fn straight_line_kernels_schedule_soundly(
        raw in prop::collection::vec(raw_instr(), 1..10),
    ) {
        check_both_designs(straight_line(&raw, true));
    }

    #[test]
    fn uniform_loop_kernels_schedule_soundly(
        body in prop::collection::vec(raw_instr(), 1..6),
        suffix in prop::collection::vec(raw_instr(), 0..4),
        trips in 1i32..4,
    ) {
        check_both_designs(counted_loop(&body, trips, &suffix, true));
    }

    #[test]
    fn nested_loop_kernels_schedule_soundly(
        outer_body in prop::collection::vec(raw_instr(), 0..3),
        inner_body in prop::collection::vec(raw_instr(), 1..4),
        outer_trips in 1i32..3,
        inner_trips in 1i32..4,
    ) {
        check_both_designs(nested_counted_loops(
            &outer_body, &inner_body, outer_trips, inner_trips, &[], true,
        ));
    }
}

/// The lint must flag the scheduler's bail site on a kernel whose
/// branch predicate is loaded from memory.
#[test]
fn load_tainted_predicate_is_flagged_at_the_bail_pc() {
    use simt_isa::{Operand, Reg, Special};
    let instrs = vec![
        Instruction::Mov {
            dst: Reg(0),
            src: Operand::Special(Special::GlobalTid),
        },
        Instruction::Ld {
            dst: Reg(1),
            base: Reg(0),
            offset: 0,
        },
        Instruction::Bra {
            pred: Reg(1),
            target: 4,
            reconv: 4,
        },
        Instruction::Mov {
            dst: Reg(2),
            src: Operand::Imm(1),
        },
        Instruction::Exit,
    ];
    let kernel = Kernel::new("tainted", instrs, 3).unwrap();
    let machine = perf_machine(&DesignPoint::WarpedCompression.config());
    let bail = schedule_kernel(&kernel, &PerfLaunch::new(1, 32), &machine, 48)
        .expect_err("a loaded predicate is not statically resolvable");
    let ScheduleBail::UnknownPredicate { pc, .. } = bail else {
        panic!("expected UnknownPredicate, got {bail:?}");
    };
    assert_eq!(pc, 2);

    let info = LaunchInfo {
        params: Vec::new(),
        blocks: Some(1),
        threads_per_block: Some(32),
        mem_words: None,
        initial_mem: None,
    };
    let analysis = analyze_with_launch(&kernel, Some(&info));
    assert!(
        analysis
            .report
            .of_kind(LintKind::UnschedulableRegion)
            .any(|d| d.pc == Some(pc)),
        "unschedulable-region lint misses the bail pc {pc}: {:?}",
        analysis.report.diagnostics,
    );
}

/// Suite-wide cross-check: wherever the scheduler bails on an
/// unresolvable predicate, the `unschedulable-region` lint must have
/// flagged that exact pc (the lint over-approximates the bail set).
#[test]
fn every_suite_bail_site_is_lint_flagged() {
    let machine = perf_machine(&DesignPoint::WarpedCompression.config());
    let sim = GpuSim::new(DesignPoint::WarpedCompression.config());
    let mut bails = 0;
    for w in suite() {
        let launch = w.launch();
        let image = std::sync::Arc::new(w.fresh_memory().words().to_vec());
        let perf_launch = PerfLaunch {
            blocks: launch.blocks(),
            threads_per_block: launch.threads_per_block(),
            params: launch.params().to_vec(),
            initial_mem: Some(image.clone()),
        };
        let residency = sim.max_resident_warps(w.kernel());
        let Err(ScheduleBail::UnknownPredicate { pc, .. }) =
            schedule_kernel(w.kernel(), &perf_launch, &machine, residency)
        else {
            continue;
        };
        bails += 1;
        let info = LaunchInfo {
            params: launch.params().to_vec(),
            blocks: Some(launch.blocks() as u32),
            threads_per_block: Some(launch.threads_per_block() as u32),
            mem_words: Some(image.len() as u64),
            initial_mem: Some(image),
        };
        let analysis = analyze_with_launch(w.kernel(), Some(&info));
        assert!(
            analysis
                .report
                .of_kind(LintKind::UnschedulableRegion)
                .any(|d| d.pc == Some(pc)),
            "`{}`: scheduler bails at pc {pc} but the lint never flagged it",
            w.name(),
        );
    }
    assert!(bails > 0, "the suite has data-dependent kernels");
}

/// Suite-wide cross-check of the memcell refinement against the
/// scheduler's shrunken bail set: every kernel the scheduler closes
/// *only* when armed with the initial-memory image must carry at least
/// one `refinable-load` lint (the refinement is what unlocked it), and
/// the converted set is pinned — losing a conversion is a capability
/// regression.
#[test]
fn refinable_load_lints_cover_the_shrunken_bail_set() {
    let machine = perf_machine(&DesignPoint::WarpedCompression.config());
    let sim = GpuSim::new(DesignPoint::WarpedCompression.config());
    let mut converted = Vec::new();
    for w in suite() {
        let launch = w.launch();
        let image = std::sync::Arc::new(w.fresh_memory().words().to_vec());
        let residency = sim.max_resident_warps(w.kernel());
        let bare = PerfLaunch {
            blocks: launch.blocks(),
            threads_per_block: launch.threads_per_block(),
            params: launch.params().to_vec(),
            initial_mem: None,
        };
        let armed = PerfLaunch {
            initial_mem: Some(image.clone()),
            ..bare.clone()
        };
        let bails_bare = schedule_kernel(w.kernel(), &bare, &machine, residency).is_err();
        let closes_armed = schedule_kernel(w.kernel(), &armed, &machine, residency).is_ok();
        if !(bails_bare && closes_armed) {
            continue;
        }
        converted.push(w.name().to_string());
        let info = LaunchInfo {
            params: launch.params().to_vec(),
            blocks: Some(launch.blocks() as u32),
            threads_per_block: Some(launch.threads_per_block() as u32),
            mem_words: Some(image.len() as u64),
            initial_mem: Some(image),
        };
        let analysis = analyze_with_launch(w.kernel(), Some(&info));
        assert!(
            analysis.report.of_kind(LintKind::RefinableLoad).count() > 0,
            "`{}` converts to static only with the image, but carries no \
             refinable-load lint",
            w.name(),
        );
    }
    assert_eq!(
        converted,
        ["kmeans", "lavamd", "srad", "spmv"],
        "the set of kernels the memcell refinement converts changed"
    );
}
