//! End-to-end gates for the differential kernel fuzzer.
//!
//! Four obligations, machine-checked through the real pipeline:
//!
//! 1. **Panic-freedom / zero findings** — a bounded campaign over the
//!    shared generator must complete without a single finding: no
//!    panics, no scheduled-replay divergence, no absint or perfbound
//!    violation, no watchdog expiry.
//! 2. **Detection** — every [`Mutation`] (one injected bug per finding
//!    category) must be caught, classified as its expected category and
//!    shrunk to a reproducer. A fuzzer that finds nothing proves
//!    nothing until its detectors are shown to fire.
//! 3. **Shrinking** — delta-debugging is deterministic, lands under a
//!    fixed instruction budget on a known injected bug, preserves the
//!    finding category, and emits a reproducer that reassembles into
//!    the shrunk kernel exactly.
//! 4. **Reproducibility** — case generation depends only on
//!    `(campaign seed, index)`, never on visit order, which is what the
//!    CLI's checkpoint/resume path relies on.

use proptest::prelude::*;
use warped_compression::{
    check_case, mutation_smoke, run_case, shrink_case, FuzzCase, FuzzConfig, Mutation,
    DEFAULT_CYCLE_BUDGET,
};

/// Obligation 1: a finding-free campaign (the PR-gate runs 300 through
/// the CLI; this keeps a smaller always-on copy in the test suite).
#[test]
fn bounded_campaign_is_finding_free() {
    let cfg = FuzzConfig::default();
    for index in 0..80 {
        let report = run_case(&cfg, index);
        assert!(
            report.finding.is_none(),
            "case {index} produced {:?}",
            report.finding
        );
        assert!(report.stats.dynamic_cycles > 0);
    }
}

/// Obligation 2: all nine injected bugs are caught, correctly
/// classified and shrunk.
#[test]
fn every_mutation_is_caught_classified_and_shrunk() {
    let outcomes = mutation_smoke(42, DEFAULT_CYCLE_BUDGET, 64);
    assert_eq!(outcomes.len(), Mutation::ALL.len());
    for o in &outcomes {
        assert!(
            o.passed(),
            "{} was not caught as {:?} within {} case(s)",
            o.mutation.name(),
            o.expected,
            o.cases_scanned
        );
        let report = o.caught.as_ref().unwrap();
        let finding = report.finding.as_ref().unwrap();
        assert!(
            finding.shrunk_instructions <= report.kernel_instructions,
            "shrinking must never grow the kernel"
        );
        assert!(finding.reproducer.contains("# wcsim fuzz reproducer"));
    }
}

/// Obligation 3a: on a known injected bug the shrinker is deterministic
/// and lands under a fixed instruction budget.
#[test]
fn known_injection_shrinks_deterministically_under_budget() {
    // Case 14 under ZeroSlack is the first slack violation for seed 42:
    // a real kernel-dependent finding (unlike the pre-kernel panics),
    // so the ddmin pass actually has work to do.
    let mutation = Some(Mutation::ZeroSlack);
    let category = Mutation::ZeroSlack.expected_category();
    let case = FuzzCase::generate(42, 14);
    let found = check_case(&case, DEFAULT_CYCLE_BUDGET, mutation)
        .expect_err("seed 42 case 14 must violate a zero slack budget");
    assert_eq!(found.category, category);
    let a = shrink_case(&case, DEFAULT_CYCLE_BUDGET, mutation, category);
    let b = shrink_case(&case, DEFAULT_CYCLE_BUDGET, mutation, category);
    assert_eq!(a.kernel, b.kernel, "shrinking must be deterministic");
    assert_eq!(
        (a.blocks, a.threads_per_block),
        (b.blocks, b.threads_per_block)
    );
    assert!(
        a.kernel.len() <= 6,
        "expected a minimal reproducer, got {} instructions",
        a.kernel.len()
    );
}

/// Obligation 3c: reproducers are standalone assemblable programs that
/// round-trip into the shrunk kernel.
#[test]
fn reproducers_reassemble_into_the_shrunk_kernel() {
    let cfg = FuzzConfig {
        mutation: Some(Mutation::ZeroSlack),
        ..FuzzConfig::default()
    };
    let report = run_case(&cfg, 14);
    let finding = report.finding.expect("case 14 must violate zero slack");
    let reassembled =
        simt_isa::assemble(&finding.reproducer).expect("reproducer must assemble as-is");
    assert_eq!(reassembled.len(), finding.shrunk_instructions);
    let shrunk = shrink_case(
        &FuzzCase::generate(cfg.seed, 14),
        cfg.cycle_budget,
        cfg.mutation,
        Mutation::ZeroSlack.expected_category(),
    );
    assert_eq!(reassembled, shrunk.kernel);
}

/// Obligation 4: generation is order-independent and seed-sensitive.
#[test]
fn generation_depends_only_on_seed_and_index() {
    let forward: Vec<FuzzCase> = (0..12).map(|i| FuzzCase::generate(9, i)).collect();
    let backward: Vec<FuzzCase> = (0..12).rev().map(|i| FuzzCase::generate(9, i)).collect();
    for (f, b) in forward.iter().zip(backward.iter().rev()) {
        assert_eq!(f.kernel, b.kernel);
        assert_eq!(f.seed, b.seed);
    }
    let other = FuzzCase::generate(10, 0);
    assert_ne!(forward[0].seed, other.seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Obligation 3b: whatever case the finding fires on, shrinking
    /// preserves the finding category — the shrunk kernel is a verified
    /// reproducer of the *same* bug class, never a different one.
    #[test]
    fn shrinking_preserves_the_failure_category(
        index in 0usize..64,
        which in 0usize..3,
    ) {
        // Three mutations whose findings depend on the generated kernel
        // (the pre-kernel panics would make the property trivial).
        let mutation = [
            Mutation::RaiseCycleFloor,
            Mutation::CorruptReplayMemory,
            Mutation::ZeroSlack,
        ][which];
        let case = FuzzCase::generate(42, index);
        let Err(found) = check_case(&case, DEFAULT_CYCLE_BUDGET, Some(mutation)) else {
            // Not every case trips every mutation (e.g. slack already
            // tight); the property quantifies over those that do.
            return Ok(());
        };
        let shrunk = shrink_case(&case, DEFAULT_CYCLE_BUDGET, Some(mutation), found.category);
        let refound = check_case(&shrunk, DEFAULT_CYCLE_BUDGET, Some(mutation))
            .expect_err("the shrunk case must still fail");
        prop_assert_eq!(refound.category, found.category);
        prop_assert!(shrunk.kernel.len() <= case.kernel.len());
    }

    /// Clean cases stay clean when re-checked (the checker itself is
    /// deterministic and side-effect free).
    #[test]
    fn checking_is_deterministic(index in 0usize..200) {
        let case = FuzzCase::generate(42, index);
        let a = check_case(&case, DEFAULT_CYCLE_BUDGET, None);
        let b = check_case(&case, DEFAULT_CYCLE_BUDGET, None);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(x), Ok(y)) = (a, b) {
            prop_assert_eq!(x.dynamic_cycles, y.dynamic_cycles);
            prop_assert_eq!(x.instructions, y.instructions);
            prop_assert_eq!(x.static_close, y.static_close);
        }
    }
}
