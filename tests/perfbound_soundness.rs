//! Soundness property test for the static performance bounds.
//!
//! For randomly generated kernels — straight-line, uniform single-loop
//! and uniform nested loops, drawn from the shared
//! [`gpu_workloads::testgen`] generator — the static
//! pipeline-interference analysis must stay a true lower bound when
//! the same kernel runs through the real simulator: the cycle bound
//! never exceeds measured cycles, the bank access floor never exceeds
//! measured accesses, the instruction floor never exceeds retired
//! instructions, and every guaranteed-conflict site's stall floor is
//! met by the per-PC stall attribution. Checked under both the
//! baseline and warped-compression design points, so
//! compression/decompression latencies and bank gating are exercised.

use gpu_workloads::testgen::{
    counted_loop, kernel_of, nested_counted_loops, raw_instr, straight_line,
};
use proptest::prelude::*;
use simt_analysis::{bound_kernel, PerfLaunch};
use simt_isa::Instruction;
use warped_compression::perf_machine;
use warped_compression_suite::prelude::*;

/// Runs one generated kernel under one design point and checks every
/// static floor against the measured run.
fn check_design(instrs: &[Instruction], design: DesignPoint) {
    let kernel = kernel_of(instrs.to_vec());
    let launch = LaunchConfig::new(1, 32);
    let mut memory = GlobalMemory::zeroed(4);
    let cfg = design.config();
    let result = GpuSim::new(cfg.clone())
        .run(&kernel, &launch, &mut memory)
        .expect("generated kernels run to completion");

    let prediction = bound_kernel(&kernel, &PerfLaunch::new(1, 32), &perf_machine(&cfg));

    assert!(
        prediction.cycle_lower_bound <= result.stats.cycles,
        "{}: static cycle bound {} beats measured {} (issue {}, chain {}, compressor {})",
        design.label(),
        prediction.cycle_lower_bound,
        result.stats.cycles,
        prediction.issue_bound,
        prediction.chain_bound,
        prediction.compressor_bound,
    );
    assert!(
        prediction.min_bank_accesses() <= result.stats.regfile.total_accesses(),
        "{}: static access floor {} beats measured {}",
        design.label(),
        prediction.min_bank_accesses(),
        result.stats.regfile.total_accesses(),
    );
    assert!(
        prediction.min_instructions <= result.stats.instructions,
        "{}: static instruction floor {} beats measured {}",
        design.label(),
        prediction.min_instructions,
        result.stats.instructions,
    );
    for c in &prediction.conflicts {
        let measured = result.stats.stalls.at(c.pc).operand_fetch();
        assert!(
            c.min_stalls <= measured,
            "{}: pc {}: guaranteed-conflict floor {} beats measured stalls {}",
            design.label(),
            c.pc,
            c.min_stalls,
            measured,
        );
    }
}

fn check_soundness(instrs: Vec<Instruction>) {
    check_design(&instrs, DesignPoint::Baseline);
    check_design(&instrs, DesignPoint::WarpedCompression);
}

proptest! {
    #[test]
    fn straight_line_bounds_stay_below_measurement(
        raw in prop::collection::vec(raw_instr(), 1..10),
    ) {
        check_soundness(straight_line(&raw, false));
    }

    #[test]
    fn single_loop_bounds_stay_below_measurement(
        body in prop::collection::vec(raw_instr(), 1..6),
        suffix in prop::collection::vec(raw_instr(), 0..4),
        trips in 1i32..4,
    ) {
        check_soundness(counted_loop(&body, trips, &suffix, false));
    }

    #[test]
    fn nested_loop_bounds_stay_below_measurement(
        outer_body in prop::collection::vec(raw_instr(), 0..3),
        inner_body in prop::collection::vec(raw_instr(), 1..4),
        outer_trips in 1i32..3,
        inner_trips in 1i32..4,
        suffix in prop::collection::vec(raw_instr(), 0..3),
    ) {
        check_soundness(nested_counted_loops(
            &outer_body, &inner_body, outer_trips, inner_trips, &suffix, false,
        ));
    }
}
