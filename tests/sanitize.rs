//! Sanitizer smoke test (`cargo test --features sanitize`).
//!
//! With the `sanitize` feature on, the simulator carries an
//! uncompressed shadow register file that checks every decompressed
//! read bit-exact, and a hazard oracle that re-verifies the scoreboard
//! on every issue/capture/retire. Any violation panics mid-run, so
//! "the run completes" *is* the assertion of zero violations.
//!
//! `bfs` is the designated workload: it is the suite's most divergent
//! kernel, so it exercises the partial-write merge path, the dummy-MOV
//! injection of §5.2, and the deepest SIMT stack activity — the places
//! a compression bug would corrupt values.

#![cfg(feature = "sanitize")]

use gpu_sim::GpuSim;
use gpu_workloads::by_name;
use warped_compression_suite::prelude::*;

fn run_sanitized(name: &str, point: DesignPoint) {
    let w = by_name(name).expect("workload exists");
    let mut memory = w.fresh_memory();
    let result = GpuSim::new(point.config())
        .run(w.kernel(), w.launch(), &mut memory)
        .unwrap_or_else(|e| panic!("{name} under {point:?}: {e}"));
    assert!(result.stats.instructions > 0);
}

#[test]
fn bfs_runs_clean_under_warped_compression() {
    run_sanitized("bfs", DesignPoint::WarpedCompression);
}

#[test]
fn bfs_runs_clean_under_baseline() {
    run_sanitized("bfs", DesignPoint::Baseline);
}
