//! Trait-only stand-in for `serde`, for fully offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types as forward-looking API surface, but contains no serialiser, so
//! marker traits with blanket impls are behaviourally sufficient. The
//! derive macros re-exported here (from the vendored `serde_derive`)
//! expand to nothing. If a future PR adds a real serialisation consumer,
//! replace this shim with the real crates via a vendored registry.
#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derived annotations and generic bounds compile unchanged.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
