//! Generate-only stand-in for the subset of `proptest` 1.x this
//! workspace uses.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build:
//!
//! - **No shrinking.** A failing case panics with the raw generated
//!   values (tests debug from the panic message + deterministic seed).
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash
//!   of its fully-qualified name (stable across runs and machines), so
//!   failures reproduce exactly. `PROPTEST_CASES` still scales the case
//!   count.
//! - **`prop_assert*` are plain `assert*`.** They panic instead of
//!   returning `Err`, which loses nothing without shrinking.
//!
//! Supported surface: `Strategy` (`prop_map`, `boxed`), integer/float
//! range strategies, `&str` regex-subset strategies, `any`, `Just`,
//! tuples up to 10, `BoxedStrategy`, `prop::collection::vec`,
//! `prop::array::uniform32`, `prop::sample::select`, `proptest!` (with
//! `#![proptest_config]` and `?`-style bodies), `prop_compose!`
//! (one- and two-list forms), `prop_oneof!` (plain and weighted), and
//! `ProptestConfig::with_cases`.
#![forbid(unsafe_code)]

use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used for all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully-qualified name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, then a fixed tweak so empty names still mix.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw from the unit interval `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// A generator of values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase this strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Closure-backed strategy; the expansion target of `prop_compose!`.
#[derive(Clone)]
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wrap a generation closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Weighted union of boxed strategies; the target of `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be 0.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            variants.iter().any(|&(w, _)| w > 0),
            "prop_oneof: all weights zero"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.variants {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any, string patterns
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let max = ((1u64 << 53) - 1) as f64;
                let unit = (rng.next_u64() >> 11) as f64 / max;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // Bias towards the boundary values real proptest weights;
                // they are where wrap-around bugs live.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A> Clone for AnyStrategy<A> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// `&str` patterns act as string strategies over a small regex subset:
/// char classes `[a-z0-9_]`, literals, and `{m,n}` / `{m}` / `?` / `*` /
/// `+` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            i += 1;
            let mut set = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad char range in pattern {pattern:?}");
                    set.extend(lo..=hi);
                    i += 3;
                } else {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1; // consume ']'
            set
        } else {
            if chars[i] == '\\' {
                i += 1;
            }
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
            let close = close.unwrap_or_else(|| panic!("unterminated {{}} in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let m: usize = body.trim().parse().unwrap();
                    (m, m)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        assert!(
            !alphabet.is_empty(),
            "empty alphabet in pattern {pattern:?}"
        );
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

// ---------------------------------------------------------------------------
// prop:: namespace (collection / array / sample)
// ---------------------------------------------------------------------------

/// Mirror of the `proptest::prop` re-export namespace.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `elem` values with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 32]` drawing each element from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> Uniform32<S> {
        Uniform32(elem)
    }

    /// Strategy produced by [`uniform32`].
    #[derive(Clone)]
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    /// Strategy produced by [`select`].
    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Error type carried by `?` inside `proptest!` bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Drive one `proptest!` test: `cases` generated inputs through `body`.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    for case in 0..cfg.cases {
        if let Err(e) = body(&mut rng) {
            panic!("proptest {name} failed at case {case}/{}: {e}", cfg.cases);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Mirror of `proptest::proptest!`: a block of property test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                &cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __pt_rng);)*
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Mirror of `prop_assert!`: panics (no shrinking to preserve).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of `prop_oneof!`: weighted or uniform choice of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Mirror of `prop_compose!`: a named function returning a strategy
/// built from one or two sequential binding lists.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
     ($($b1:pat in $s1:expr),+ $(,)?)
     ($($b2:pat in $s2:expr),+ $(,)?)
     -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |__pt_rng: &mut $crate::TestRng| {
                $(let $b1 = $crate::Strategy::generate(&($s1), __pt_rng);)+
                $(let $b2 = $crate::Strategy::generate(&($s2), __pt_rng);)+
                $body
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
     ($($b1:pat in $s1:expr),+ $(,)?)
     -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |__pt_rng: &mut $crate::TestRng| {
                $(let $b1 = $crate::Strategy::generate(&($s1), __pt_rng);)+
                $body
            })
        }
    };
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t1");
        for _ in 0..500 {
            let (a, b, c) = (0u8..4, -64i32..64, 1usize..80).generate(&mut rng);
            assert!(a < 4);
            assert!((-64..64).contains(&b));
            assert!((1..80).contains(&c));
        }
    }

    #[test]
    fn string_pattern_matches_shape() {
        let mut rng = TestRng::deterministic("t2");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = TestRng::deterministic("t3");
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let picks: Vec<u32> = (0..1000).map(|_| s.generate(&mut rng)).collect();
        let twos = picks.iter().filter(|&&v| v == 2).count();
        assert!((50..200).contains(&twos), "got {twos}");
    }

    #[test]
    fn vec_and_select_compose() {
        let mut rng = TestRng::deterministic("t4");
        let s = prop::collection::vec(prop::sample::select(vec![3u8, 5, 7]), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| [3, 5, 7].contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u32..100, ys in prop::collection::vec(any::<u32>(), 3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), 3);
        }
    }
}
