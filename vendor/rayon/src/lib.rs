//! Scoped-thread stand-in for the slice of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` (and collecting into
//! `Result<Vec<_>, E>`).
//!
//! Semantics preserved from real rayon:
//!
//! - **Deterministic output order.** Results are returned in input
//!   order regardless of which worker computed them (workers tag each
//!   result with its index and the collector sorts).
//! - **`RAYON_NUM_THREADS`** caps the worker count (`1` forces serial
//!   execution, which is the reproducible-timing mode DESIGN.md
//!   documents).
//! - **Panic propagation.** A panic in a worker propagates to the
//!   caller via `std::thread::scope`.
//! - **No oversubscription under nesting.** A process-wide permit
//!   counter bounds the total number of extra worker threads, so a
//!   parallel campaign that calls a parallel `run_suite` degrades to
//!   serial inner loops instead of spawning threads quadratically
//!   (rayon achieves the same with a shared global pool).
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum worker threads for the whole process (including the caller).
fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Permits for *extra* threads beyond each call site's own thread.
fn permits() -> &'static AtomicIsize {
    static PERMITS: OnceLock<AtomicIsize> = OnceLock::new();
    PERMITS.get_or_init(|| AtomicIsize::new(max_threads() as isize - 1))
}

/// Try to reserve up to `want` extra worker threads; returns how many
/// were granted (possibly 0, in which case the caller runs serially).
fn acquire(want: usize) -> usize {
    let permits = permits();
    let mut granted = 0;
    while granted < want {
        let cur = permits.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        if permits
            .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

fn release(n: usize) {
    permits().fetch_add(n as isize, Ordering::Relaxed);
}

/// Run `f` over every item, on `1 + extra` threads with index stealing,
/// returning results in input order.
fn run_ordered<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let extra = acquire(n.min(max_threads()).saturating_sub(1));
    if extra == 0 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = |out: &mut Vec<(usize, R)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        out.push((i, f(&items[i])));
    };
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..extra)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    worker(&mut out);
                    out
                })
            })
            .collect();
        worker(&mut tagged);
        for h in handles {
            // A worker panic surfaces here and unwinds through the scope.
            tagged.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    release(extra);
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `par_iter()` entry point for `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by the parallel iterator.
    type Item: 'data;
    /// Borrow `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// Mapped parallel iterator: the only adapter this shim provides.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

/// Collect targets for [`ParallelIterator::collect`].
pub trait FromParallelResults<R>: Sized {
    /// Build the collection from results in input order.
    fn from_ordered_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered_results(results: Vec<R>) -> Self {
        results
    }
}

impl<T, E> FromParallelResults<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_results(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().collect()
    }
}

/// The subset of rayon's `ParallelIterator` the workspace relies on.
pub trait ParallelIterator: Sized {
    /// Item produced by this iterator.
    type Item;

    /// Map every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> impl ParallelIterator<Item = R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    /// Execute and gather results, preserving input order.
    fn collect<C: FromParallelResults<Self::Item>>(self) -> C
    where
        Self::Item: Send;
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn map<R, F>(self, f: F) -> impl ParallelIterator<Item = R>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    fn collect<C: FromParallelResults<&'data T>>(self) -> C
    where
        &'data T: Send,
    {
        C::from_ordered_results(run_ordered(self.items, |t: &'data T| t))
    }
}

impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParallelIterator
    for ParMap<'data, T, F>
{
    type Item = R;

    fn map<R2, F2>(self, f2: F2) -> impl ParallelIterator<Item = R2>
    where
        R2: Send,
        F2: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t: &'data T| f2(f(t)),
        }
    }

    fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_ordered_results(run_ordered(self.items, self.f))
    }
}

/// Current effective thread cap (useful for logging/bench metadata).
pub fn current_num_threads() -> usize {
    max_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_serial() {
        let xs: Vec<u64> = (0..257).collect();
        let par: Vec<u64> = xs.par_iter().map(|&x| x * 3 + 1).collect();
        let ser: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let xs: Vec<u32> = (0..64).collect();
        let r: Result<Vec<u32>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 40 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("bad 40".into()));
    }

    #[test]
    fn nested_parallelism_completes() {
        let outer: Vec<u32> = (0..8).collect();
        let totals: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u32> = (0..100).collect();
                inner
                    .par_iter()
                    .map(|&i| (o as u64) + (i as u64))
                    .collect::<Vec<u64>>()
                    .into_iter()
                    .sum()
            })
            .collect();
        for (o, t) in totals.iter().enumerate() {
            assert_eq!(*t, 100 * o as u64 + 4950);
        }
    }
}
