//! No-op derive macros standing in for `serde_derive`.
//!
//! This workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing actually serialises (there is no
//! `serde_json`-style consumer in the tree, and the build environment is
//! fully offline). The vendored `serde` shim provides blanket trait
//! impls, so these derives merely need to exist and accept the `serde`
//! helper attribute — they expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and
/// expands to nothing; `vendor/serde`'s blanket impl supplies the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and
/// expands to nothing; `vendor/serde`'s blanket impl supplies the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
