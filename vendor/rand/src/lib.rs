//! Deterministic stand-in for the subset of `rand` 0.8 this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! on integer ranges, and `Rng::gen_bool`.
//!
//! The workload generators only need a *deterministic, well-mixed*
//! stream (register-value similarity is what the paper's figures key
//! on), not any particular distribution engine, so an xoshiro256++
//! generator seeded through SplitMix64 — the same construction rand's
//! `SmallRng` family uses — is a faithful replacement.
#![forbid(unsafe_code)]

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rng construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            // (and used by rand's seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(7);
                move |_| r.gen_range(0u32..1000)
            })
            .collect();
        let b: Vec<u32> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(7);
                move |_| r.gen_range(0u32..1000)
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u32> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(8);
                move |_| r.gen_range(0u32..1000)
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5u32..10);
            assert!((5..10).contains(&v));
            let s = r.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.6)).count();
        assert!((5500..6500).contains(&hits), "got {hits}");
    }
}
