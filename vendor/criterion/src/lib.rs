//! Minimal wall-clock benchmark harness with criterion 0.5's API shape.
//!
//! Supports the subset the workspace's benches use: `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId::{new, from_parameter}`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! calibrated briefly and then timed for a handful of short samples; the
//! median ns/iter is printed in a `name/id: time` line, with a GiB/s or
//! Melem/s rate appended when the group declares a [`Throughput`].
//!
//! Two knobs keep `cargo test` fast (cargo runs `harness = false` bench
//! binaries during plain test runs): passing `--test` (what cargo does
//! in test mode) or setting `CRITERION_FAST=1` reduces every benchmark
//! to a single calibration iteration.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    fast: bool,
}

impl Criterion {
    /// Create a harness, honouring test-mode args and `CRITERION_FAST`.
    pub fn from_args() -> Self {
        let fast =
            std::env::args().any(|a| a == "--test") || std::env::var_os("CRITERION_FAST").is_some();
        Criterion { fast }
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            fast: self.fast,
            _c: self,
        }
    }
}

/// Per-iteration work a group processes, mirroring
/// `criterion::Throughput`; turns the median time into a rate line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as GiB/s).
    Bytes(u64),
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
}

impl Throughput {
    fn rate(self, ns_per_iter: f64) -> String {
        match self {
            Throughput::Bytes(n) => {
                let gib_s = n as f64 / ns_per_iter * 1e9 / (1u64 << 30) as f64;
                format!("{gib_s:.3} GiB/s")
            }
            Throughput::Elements(n) => {
                let melem_s = n as f64 / ns_per_iter * 1e9 / 1e6;
                format!("{melem_s:.3} Melem/s")
            }
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` compound id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    fast: bool,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare how much work one iteration performs; subsequent
    /// benchmarks in the group report a derived rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine with no per-benchmark input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Benchmark a routine against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; nothing left to do).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration pass: find an iteration count that runs ~2ms.
        f(&mut b);
        if self.fast {
            println!("{}/{}: ok (fast mode, 1 iter)", self.name, id);
            return;
        }
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let rate = self
            .throughput
            .map_or_else(String::new, |t| format!(" = {}", t.rate(median)));
        println!(
            "{}/{}: {}{} ({} samples x {} iters)",
            self.name,
            id,
            format_ns(median),
            rate,
            self.sample_size,
            iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
